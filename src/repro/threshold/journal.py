"""Corruption-resilient checkpoint journal / result cache storage layer.

Resolving 10⁻⁵–10⁻⁶ logical failure rates means hours-long scans; losing
every completed shard to one crashed worker (or a Ctrl-C, or an OOM kill)
is not acceptable — and neither is silently *wrong* persisted data.  The
journal persists each finished shard's ``(shots, failures)`` into sqlite
the moment it completes — WAL mode, one commit per shard, so a hard kill
at any instant loses at most the shards still in flight — and a restarted
run replays finished shards from disk, re-executing only the remainder.

Content-addressed run keys
--------------------------
A journal row is only replayable if it provably belongs to *this* run, so
rows are keyed by :func:`compute_run_key`: a SHA-256 over the exact inputs
the sharded driver makes deterministic — ``(kind, pickled args
(protocol/code/noise/rounds), shots, seed entropy + spawn key, resolved
shard count)``.  Because every shard is a pure function of its spec, a
replayed shard is bit-for-bit what re-executing it would produce; resuming
is therefore exactly as correct as a clean run.  Any input change — one
more shot, a different seed, a different noise rate — changes the key and
the run starts fresh.

``seed=None`` runs draw fresh OS entropy, so their key never matches a
previous run's: an irreproducible run is (correctly) never resumed.  Pass
an explicit seed to make a scan resumable.

Physics fingerprints and cross-run pooling
------------------------------------------
Each registered run also carries :func:`compute_physics_key` — the run key
with seed, shots, and shard plan *excluded*.  Two completed runs over the
same physics with different seeds (or shot budgets) therefore share a
physics key, and :meth:`CheckpointJournal.pooled_physics_counts` merges
them into one higher-shot ``(shots, failures)`` answer — the
ROADMAP's content-addressed result cache (see
:mod:`repro.threshold.cache` for the user-facing API).

Integrity: trust nothing you did not verify
-------------------------------------------
Persisted counts feed threshold claims, so a corrupted row must never
replay silently:

* every shard row carries a :func:`row_checksum` over
  ``(run_key, shard_index, shots, failures)``; rows failing verification
  are **quarantined** (moved to a ``quarantine`` table, with a
  :class:`CacheCorrupt` warning) and the shard is recomputed — bit-for-bit
  identical, shards are pure functions of their specs;
* the schema carries a ``PRAGMA user_version``: an old layout is migrated
  in place, an unknown/newer one is refused (:class:`JournalSchemaError`)
  rather than guessed at;
* ``PRAGMA integrity_check`` runs on every open, so a torn WAL or
  bit-rotted page surfaces as a :class:`sqlite3.DatabaseError` at open
  time (which the runtime degrades on) instead of as garbage counts;
* :meth:`register_run` validates pre-existing metadata under the same run
  key and raises :class:`JournalMismatch` on conflict instead of silently
  keeping stale rows.

This layer *raises* on storage faults; the policy of surviving them
(bounded lock retry, degrade-to-uncheckpointed with a ``JournalDegraded``
warning) lives with the rest of the resilience policy in
:mod:`repro.threshold.runtime`.
"""

from __future__ import annotations

import hashlib
import pickle
import sqlite3
import time
import warnings
from pathlib import Path

__all__ = [
    "CacheCorrupt",
    "CheckpointJournal",
    "JournalDegraded",
    "JournalMismatch",
    "JournalSchemaError",
    "compute_physics_key",
    "compute_run_key",
    "row_checksum",
]

# Bump when the key payload layout changes so stale journals never replay
# into a new layout.
_KEY_VERSION = 1

# PRAGMA user_version stamped into every journal this code writes.  v0 is
# the PR 6 layout (no checksums, no physics keys, no quarantine table) and
# is migrated in place; anything else is refused.
_SCHEMA_VERSION = 2

# Column sets used to recognize a v0 journal before migrating it — an
# unrecognized layout is refused, never "repaired".
_V0_SHARD_COLUMNS = {"run_key", "shard_index", "shots", "failures", "recorded_unix"}
_V0_RUN_COLUMNS = {"run_key", "kind", "shots", "num_shards", "created_unix"}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_key      TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    shots        INTEGER NOT NULL,
    num_shards   INTEGER NOT NULL,
    physics_key  TEXT,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shard_results (
    run_key       TEXT NOT NULL,
    shard_index   INTEGER NOT NULL,
    shots         INTEGER NOT NULL,
    failures      INTEGER NOT NULL,
    checksum      TEXT,
    recorded_unix REAL NOT NULL,
    PRIMARY KEY (run_key, shard_index)
);
CREATE TABLE IF NOT EXISTS quarantine (
    run_key          TEXT NOT NULL,
    shard_index      INTEGER NOT NULL,
    shots            INTEGER,
    failures         INTEGER,
    checksum         TEXT,
    reason           TEXT NOT NULL,
    quarantined_unix REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_physics ON runs (physics_key);
"""


class JournalMismatch(RuntimeError):
    """A journal row contradicts the run it claims to belong to (stale or
    conflicting run metadata under the same key) — the journal is corrupt
    or a run-key collision occurred; refusing to treat it as this run's."""


class JournalSchemaError(RuntimeError):
    """The journal file carries an unknown ``PRAGMA user_version`` (newer
    code wrote it, or it is not a journal at all).  Explicitly refused —
    migrate with the version that created it, or point at a fresh path."""


class CacheCorrupt(UserWarning):
    """A cached shard row failed validation (checksum mismatch, impossible
    shard index, or a shard size that contradicts the run's plan).  The row
    is quarantined and the shard recomputed — pooled counts stay exactly
    what a clean run would produce; only the cached work is lost."""


class JournalDegraded(UserWarning):
    """The checkpoint journal/result cache became unavailable (disk full,
    readonly filesystem, I/O error, lock contention beyond the retry
    budget) and the run continues *uncheckpointed*.  Results are
    unaffected — only crash-resume durability and cache reuse are lost."""


def compute_run_key(
    kind: str,
    args: tuple,
    shots: int,
    seed_fingerprint: tuple,
    num_shards: int,
) -> str:
    """Content-addressed key over everything that determines the pooled counts.

    ``args`` is the exact payload shipped to workers (protocol/code/noise/
    rounds), hashed via its pickle bytes — the same bytes whose
    picklability PR 5 already guarantees.  ``seed_fingerprint`` is the
    normalized ``(entropy, spawn_key)`` identity of the root
    ``SeedSequence`` (see ``sharded._seed_fingerprint``), and
    ``num_shards`` is the *resolved* shard count, so the key pins the
    shard plan itself.
    """
    payload = pickle.dumps(
        (_KEY_VERSION, kind, int(shots), int(num_shards), seed_fingerprint, args),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def compute_physics_key(kind: str, args: tuple) -> str:
    """Physics fingerprint: :func:`compute_run_key` with seed, shots, and
    shard plan *excluded*.

    Every run over the same ``(kind, protocol/code/noise/rounds)`` payload
    shares this key regardless of seed or shot budget, so completed runs
    pool across seeds into one higher-shot Wilson answer.
    """
    payload = pickle.dumps((_KEY_VERSION, kind, args), protocol=4)
    return hashlib.sha256(payload).hexdigest()


def row_checksum(run_key: str, shard_index: int, shots: int, failures: int) -> str:
    """Integrity checksum binding a shard row's counts to its identity.

    Covers exactly the values that feed pooled counts; a flipped bit in
    any of them (bit rot, a torn write, a buggy external edit) fails
    verification and quarantines the row instead of polluting a threshold
    estimate.
    """
    payload = f"{run_key}|{int(shard_index)}|{int(shots)}|{int(failures)}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class CheckpointJournal:
    """Sqlite/WAL journal of completed shards, one commit per shard.

    Single-writer by construction: only the driver process records
    results (workers stream counts back over the pool's result queue),
    so there is no lock contention in the common case; ``timeout=30``
    covers concurrent *separate* driver processes sharing one journal
    file, which WAL serializes safely
    (``tests/test_threshold_journal.py`` proves it with two live driver
    processes).

    ``io_chaos`` wraps the sqlite connection in the fault-injecting proxy
    from :mod:`repro.threshold.chaos` — test harness only.
    """

    def __init__(self, path: str | Path, io_chaos=None) -> None:
        self.path = Path(path)
        self._closed = False
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        if io_chaos is not None:
            from repro.threshold.chaos import ChaosConnection

            conn = ChaosConnection(conn, io_chaos)
        self._conn = conn
        try:
            # A torn WAL or bit-rotted page must surface here, at open, as
            # a DatabaseError the runtime can degrade on — never later as
            # garbage counts.  (On a corrupt file this either reports the
            # damage or raises "file is not a database" itself.)
            status = self._conn.execute("PRAGMA integrity_check").fetchone()[0]
            if status != "ok":
                raise sqlite3.DatabaseError(
                    f"integrity_check failed for {self.path}: {status}"
                )
            self._ensure_schema()
            # WAL keeps readers unblocked during the per-shard commits and
            # makes a mid-commit kill recoverable; NORMAL sync is durable to
            # application crash (the case we defend against) without fsync
            # per shard.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.commit()
        except BaseException:
            self._closed = True
            try:
                conn.close()
            except (sqlite3.Error, OSError):
                # Cleanup on the failure path: the original open/schema
                # error is already propagating and is the observable fault;
                # a close error on a broken handle adds nothing.
                pass
            raise

    def __getstate__(self) -> None:
        """Sqlite connections are process-local: a journal that rode a
        worker payload across the spawn boundary would arrive as a dead
        handle.  Refuse at pickle time, where the mistake is visible —
        workers never journal; only the driver process records results."""
        raise TypeError(
            "CheckpointJournal holds a process-local sqlite connection and "
            "cannot be pickled; pass the journal *path* and reopen in the "
            "receiving process instead"
        )

    # -- schema --------------------------------------------------------
    def _ensure_schema(self) -> None:
        """Create, migrate, or refuse — never guess at a layout."""
        version = int(self._conn.execute("PRAGMA user_version").fetchone()[0])
        if version == 0:
            legacy = self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name='shard_results'"
            ).fetchone()
            if legacy is not None:
                self._migrate_v0()
        elif version != _SCHEMA_VERSION:
            raise JournalSchemaError(
                f"{self.path} carries schema user_version={version}; this "
                f"code writes version {_SCHEMA_VERSION} and refuses to "
                f"guess at an unknown layout — use the code that created "
                f"it, or point at a fresh path"
            )
        self._conn.executescript(_SCHEMA)
        self._conn.execute(f"PRAGMA user_version = {_SCHEMA_VERSION}")
        self._conn.commit()

    def _migrate_v0(self) -> None:
        """In-place upgrade of a PR 6 journal: add the checksum and
        physics-key columns and backfill checksums so existing rows keep
        replaying (their integrity is assumed-good once, at migration —
        exactly what v0 semantics already were)."""
        shard_cols = {
            r[1] for r in self._conn.execute("PRAGMA table_info(shard_results)")
        }
        run_cols = {r[1] for r in self._conn.execute("PRAGMA table_info(runs)")}
        if not (_V0_SHARD_COLUMNS <= shard_cols and _V0_RUN_COLUMNS <= run_cols):
            raise JournalSchemaError(
                f"{self.path} has user_version=0 but does not match the v0 "
                f"journal layout; refusing to migrate an unrecognized schema"
            )
        if "checksum" not in shard_cols:
            self._conn.execute("ALTER TABLE shard_results ADD COLUMN checksum TEXT")
            rows = self._conn.execute(
                "SELECT run_key, shard_index, shots, failures FROM shard_results"
            ).fetchall()
            for run_key, idx, shots, failures in rows:
                self._conn.execute(
                    "UPDATE shard_results SET checksum = ? "
                    "WHERE run_key = ? AND shard_index = ?",
                    (row_checksum(run_key, idx, shots, failures), run_key, idx),
                )
        if "physics_key" not in run_cols:
            self._conn.execute("ALTER TABLE runs ADD COLUMN physics_key TEXT")
        self._conn.commit()

    # -- recording -----------------------------------------------------
    def register_run(
        self,
        run_key: str,
        kind: str,
        shots: int,
        num_shards: int,
        physics_key: str | None = None,
    ) -> None:
        """Note the run's shape; validate it if already present.

        Re-registering with identical metadata is a no-op (and backfills a
        missing physics key, e.g. after a v0 migration).  Conflicting
        metadata under the same key means the stored row is stale or
        corrupt — raise :class:`JournalMismatch` instead of silently
        keeping it, as ``INSERT OR IGNORE`` used to.
        """
        row = self._conn.execute(
            "SELECT kind, shots, num_shards FROM runs WHERE run_key = ?",
            (run_key,),
        ).fetchone()
        if row is not None:
            if (row[0], int(row[1]), int(row[2])) != (kind, int(shots), int(num_shards)):
                raise JournalMismatch(
                    f"run {run_key[:12]}… is already registered as "
                    f"(kind={row[0]!r}, shots={row[1]}, num_shards={row[2]}) "
                    f"but this run is (kind={kind!r}, shots={shots}, "
                    f"num_shards={num_shards}) — the stored metadata is "
                    f"stale or corrupt"
                )
            if physics_key is not None:
                self._conn.execute(
                    "UPDATE runs SET physics_key = ? "
                    "WHERE run_key = ? AND physics_key IS NULL",
                    (physics_key, run_key),
                )
                self._conn.commit()
            return
        self._conn.execute(
            "INSERT INTO runs (run_key, kind, shots, num_shards, physics_key, "
            "created_unix) VALUES (?, ?, ?, ?, ?, ?)",
            (run_key, kind, int(shots), int(num_shards), physics_key, time.time()),
        )
        self._conn.commit()

    def record_shard(
        self, run_key: str, shard_index: int, shots: int, failures: int
    ) -> None:
        """Persist one finished shard — committed immediately (crash-safe),
        checksummed so a later corruption can never replay silently."""
        self._conn.execute(
            "INSERT OR REPLACE INTO shard_results "
            "(run_key, shard_index, shots, failures, checksum, recorded_unix) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                run_key,
                int(shard_index),
                int(shots),
                int(failures),
                row_checksum(run_key, shard_index, shots, failures),
                time.time(),
            ),
        )
        self._conn.commit()

    # -- quarantine ----------------------------------------------------
    def quarantine_shard(self, run_key: str, shard_index: int, reason: str) -> None:
        """Move one shard row out of the replay path, preserving it for
        forensics; the shard will be recomputed on the next run."""
        self._conn.execute(
            "INSERT INTO quarantine (run_key, shard_index, shots, failures, "
            "checksum, reason, quarantined_unix) "
            "SELECT run_key, shard_index, shots, failures, checksum, ?, ? "
            "FROM shard_results WHERE run_key = ? AND shard_index = ?",
            (reason, time.time(), run_key, int(shard_index)),
        )
        self._conn.execute(
            "DELETE FROM shard_results WHERE run_key = ? AND shard_index = ?",
            (run_key, int(shard_index)),
        )
        self._conn.commit()

    def quarantine_run(self, run_key: str, reason: str) -> None:
        """Quarantine every shard row of a run and drop its registration
        (used when the run *metadata* itself fails validation)."""
        self._conn.execute(
            "INSERT INTO quarantine (run_key, shard_index, shots, failures, "
            "checksum, reason, quarantined_unix) "
            "SELECT run_key, shard_index, shots, failures, checksum, ?, ? "
            "FROM shard_results WHERE run_key = ?",
            (reason, time.time(), run_key),
        )
        self._conn.execute(
            "DELETE FROM shard_results WHERE run_key = ?", (run_key,)
        )
        self._conn.execute("DELETE FROM runs WHERE run_key = ?", (run_key,))
        self._conn.commit()

    # -- replay / cache reads ------------------------------------------
    def completed_shards(
        self, run_key: str, expected_sizes: list[int] | None = None
    ) -> dict[int, tuple[int, int]]:
        """Verified ``{shard_index: (shots, failures)}`` recorded for this run.

        Every row is checksum-verified, and — when ``expected_sizes`` (the
        run's shard plan) is given — validated against the plan: the index
        must exist in it and the recorded shots must match it.  Invalid
        rows are quarantined with a :class:`CacheCorrupt` warning and
        simply *absent* from the result, so the caller recomputes them;
        corruption can cost cached work, never correctness.
        """
        rows = self._conn.execute(
            "SELECT shard_index, shots, failures, checksum FROM shard_results "
            "WHERE run_key = ?",
            (run_key,),
        ).fetchall()
        clean: dict[int, tuple[int, int]] = {}
        for idx, shots, failures, checksum in rows:
            idx, shots, failures = int(idx), int(shots), int(failures)
            reason = None
            if checksum != row_checksum(run_key, idx, shots, failures):
                reason = "checksum mismatch"
            elif expected_sizes is not None:
                if not 0 <= idx < len(expected_sizes):
                    reason = f"shard index {idx} outside the {len(expected_sizes)}-shard plan"
                elif shots != int(expected_sizes[idx]):
                    reason = f"recorded shots {shots} != planned {expected_sizes[idx]}"
            if reason is not None:
                self.quarantine_shard(run_key, idx, reason)
                warnings.warn(
                    f"cached shard (run {run_key[:12]}…, shard {idx}) failed "
                    f"validation ({reason}); quarantined — the shard will be "
                    f"recomputed, pooled counts are unaffected",
                    CacheCorrupt,
                    stacklevel=3,
                )
                continue
            clean[idx] = (shots, failures)
        return clean

    def merged_counts(self, run_key: str) -> tuple[int, int]:
        """Pooled verified ``(shots, failures)`` over this run's recorded
        shards — the content-addressed result-cache read path."""
        counts = self.completed_shards(run_key)
        return (
            sum(s for s, _ in counts.values()),
            sum(f for _, f in counts.values()),
        )

    def pooled_physics_counts(
        self, physics_key: str
    ) -> tuple[int, int, list[str]]:
        """Cross-run pooling: verified ``(shots, failures, run_keys)``
        summed over every **complete** run sharing this physics
        fingerprint — seeds and shard plans differ, the physics does not,
        so the merge is one legitimate higher-shot experiment.

        Incomplete (still-resumable) runs are excluded: a partially
        journaled run is not yet an experiment anyone finished.
        """
        pooled_shots = pooled_failures = 0
        complete: list[str] = []
        rows = self._conn.execute(
            "SELECT run_key, num_shards FROM runs WHERE physics_key = ?",
            (physics_key,),
        ).fetchall()
        for run_key, num_shards in rows:
            counts = self.completed_shards(run_key)
            if len(counts) != int(num_shards):
                continue
            pooled_shots += sum(s for s, _ in counts.values())
            pooled_failures += sum(f for _, f in counts.values())
            complete.append(run_key)
        return pooled_shots, pooled_failures, complete

    def clear_run(self, run_key: str) -> None:
        """Drop a run's shards (``resume=False`` starts it from scratch)."""
        self._conn.execute(
            "DELETE FROM shard_results WHERE run_key = ?", (run_key,)
        )
        self._conn.execute("DELETE FROM runs WHERE run_key = ?", (run_key,))
        self._conn.commit()

    def runs(self) -> list[tuple[str, str, int, int]]:
        """All registered runs as ``(run_key, kind, shots, num_shards)``."""
        return [
            (k, kind, int(s), int(n))
            for k, kind, s, n in self._conn.execute(
                "SELECT run_key, kind, shots, num_shards FROM runs "
                "ORDER BY created_unix"
            )
        ]

    # -- introspection / maintenance -----------------------------------
    def stats(self) -> dict:
        """Cache health summary (the ``cache stats`` CLI subcommand)."""
        one = lambda sql: int(self._conn.execute(sql).fetchone()[0])  # noqa: E731
        return {
            "path": str(self.path),
            "schema_version": _SCHEMA_VERSION,
            "runs": one("SELECT COUNT(*) FROM runs"),
            "complete_runs": one(
                "SELECT COUNT(*) FROM runs r WHERE r.num_shards = "
                "(SELECT COUNT(*) FROM shard_results s WHERE s.run_key = r.run_key)"
            ),
            "shard_rows": one("SELECT COUNT(*) FROM shard_results"),
            "quarantined_rows": one("SELECT COUNT(*) FROM quarantine"),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    def gc(
        self,
        grace_seconds: float = 3600.0,
        protected_keys: "set[str] | frozenset[str] | tuple | list" = (),
    ) -> dict:
        """Reclaim space: drop *stale* incomplete runs, purge the
        quarantine, drop orphaned shard rows, and VACUUM.  Returns a
        report of what was removed.

        An incomplete run is only collectible when it is provably
        abandoned, not merely unfinished: WAL lets a gc run concurrently
        with a live scan writing the same journal, and the original gc
        collected the live run's rows mid-write (every one of its finished
        shards silently recomputed).  Two guards close that race:

        * ``grace_seconds`` — a run whose newest row (or registration) is
          younger than this is presumed in flight and skipped;
        * ``protected_keys`` — run keys that must never be collected
          regardless of age, e.g. the scan queue's
          :meth:`~repro.threshold.scheduler.ScanQueue.active_run_keys`
          (a pending job may sit in the queue longer than any grace
          window before its claimant starts writing).
        """
        now = time.time()
        protected = set(protected_keys)
        incomplete: list[str] = []
        live_skipped = 0
        for run_key, _, _, num_shards in self.runs():
            recorded = int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM shard_results WHERE run_key = ?",
                    (run_key,),
                ).fetchone()[0]
            )
            if recorded == num_shards:
                continue
            if run_key in protected:
                live_skipped += 1
                continue
            newest = self._conn.execute(
                "SELECT MAX(recorded_unix) FROM shard_results WHERE run_key = ?",
                (run_key,),
            ).fetchone()[0]
            created = self._conn.execute(
                "SELECT created_unix FROM runs WHERE run_key = ?", (run_key,)
            ).fetchone()[0]
            last_activity = max(float(created or 0.0), float(newest or 0.0))
            if now - last_activity < grace_seconds:
                live_skipped += 1
                continue
            incomplete.append(run_key)
        for run_key in incomplete:
            self.clear_run(run_key)
        quarantined = self._conn.execute("DELETE FROM quarantine").rowcount
        orphans = self._conn.execute(
            "DELETE FROM shard_results WHERE run_key NOT IN "
            "(SELECT run_key FROM runs)"
        ).rowcount
        self._conn.commit()
        self._conn.execute("VACUUM")
        return {
            "incomplete_runs_dropped": len(incomplete),
            "live_runs_skipped": live_skipped,
            "quarantined_rows_purged": int(quarantined),
            "orphan_rows_dropped": int(orphans),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Idempotent close; checkpoints and truncates the WAL first so a
        cleanly closed journal leaves no ``-wal``/``-shm`` litter behind."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # best effort — close must never raise over WAL hygiene
        try:
            self._conn.close()
        except sqlite3.Error:
            pass

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
