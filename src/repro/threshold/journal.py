"""Crash-safe checkpoint journal for sharded Monte Carlo runs.

Resolving 10⁻⁵–10⁻⁶ logical failure rates means hours-long scans; losing
every completed shard to one crashed worker (or a Ctrl-C, or an OOM kill)
is not acceptable.  The journal persists each finished shard's
``(shots, failures)`` into sqlite the moment it completes — WAL mode, one
commit per shard, so a hard kill at any instant loses at most the shards
still in flight — and a restarted run replays finished shards from disk,
re-executing only the remainder.

Content-addressed run keys
--------------------------
A journal row is only replayable if it provably belongs to *this* run, so
rows are keyed by :func:`compute_run_key`: a SHA-256 over the exact inputs
the sharded driver makes deterministic — ``(kind, pickled args
(protocol/code/noise/rounds), shots, seed entropy + spawn key, resolved
shard count)``.  Because every shard is a pure function of its spec, a
replayed shard is bit-for-bit what re-executing it would produce; resuming
is therefore exactly as correct as a clean run.  Any input change — one
more shot, a different seed, a different noise rate — changes the key and
the run starts fresh.

``seed=None`` runs draw fresh OS entropy, so their key never matches a
previous run's: an irreproducible run is (correctly) never resumed.  Pass
an explicit seed to make a scan resumable.

The same table is deliberately the seed of the ROADMAP's content-addressed
result cache: a completed run's pooled counts are addressable by run key
(:meth:`CheckpointJournal.merged_counts`), and two finished runs over the
same physics with different seeds can later be pooled into one
higher-shot answer.
"""

from __future__ import annotations

import hashlib
import pickle
import sqlite3
import time
from pathlib import Path

__all__ = ["CheckpointJournal", "JournalMismatch", "compute_run_key"]

# Bump when the key payload layout changes so stale journals never replay
# into a new layout.
_KEY_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_key      TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    shots        INTEGER NOT NULL,
    num_shards   INTEGER NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS shard_results (
    run_key       TEXT NOT NULL,
    shard_index   INTEGER NOT NULL,
    shots         INTEGER NOT NULL,
    failures      INTEGER NOT NULL,
    recorded_unix REAL NOT NULL,
    PRIMARY KEY (run_key, shard_index)
);
"""


class JournalMismatch(RuntimeError):
    """A journal row contradicts the run it claims to belong to (shard
    index out of range or shard size mismatch) — the journal is corrupt or
    a run-key collision occurred; refusing to resume from it."""


def compute_run_key(
    kind: str,
    args: tuple,
    shots: int,
    seed_fingerprint: tuple,
    num_shards: int,
) -> str:
    """Content-addressed key over everything that determines the pooled counts.

    ``args`` is the exact payload shipped to workers (protocol/code/noise/
    rounds), hashed via its pickle bytes — the same bytes whose
    picklability PR 5 already guarantees.  ``seed_fingerprint`` is the
    normalized ``(entropy, spawn_key)`` identity of the root
    ``SeedSequence`` (see ``sharded._seed_fingerprint``), and
    ``num_shards`` is the *resolved* shard count, so the key pins the
    shard plan itself.
    """
    payload = pickle.dumps(
        (_KEY_VERSION, kind, int(shots), int(num_shards), seed_fingerprint, args),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


class CheckpointJournal:
    """Sqlite/WAL journal of completed shards, one commit per shard.

    Single-writer by construction: only the driver process records
    results (workers stream counts back over the pool's result queue),
    so there is no lock contention in the common case; ``timeout=30``
    covers concurrent *separate* driver processes sharing one journal
    file, which WAL serializes safely.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.executescript(_SCHEMA)
        # WAL keeps readers unblocked during the per-shard commits and
        # makes a mid-commit kill recoverable; NORMAL sync is durable to
        # application crash (the case we defend against) without fsync
        # per shard.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.commit()

    # -- recording -----------------------------------------------------
    def register_run(
        self, run_key: str, kind: str, shots: int, num_shards: int
    ) -> None:
        """Idempotently note the run's shape (introspection / cache seed)."""
        self._conn.execute(
            "INSERT OR IGNORE INTO runs (run_key, kind, shots, num_shards, "
            "created_unix) VALUES (?, ?, ?, ?, ?)",
            (run_key, kind, int(shots), int(num_shards), time.time()),
        )
        self._conn.commit()

    def record_shard(
        self, run_key: str, shard_index: int, shots: int, failures: int
    ) -> None:
        """Persist one finished shard — committed immediately (crash-safe)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO shard_results "
            "(run_key, shard_index, shots, failures, recorded_unix) "
            "VALUES (?, ?, ?, ?, ?)",
            (run_key, int(shard_index), int(shots), int(failures), time.time()),
        )
        self._conn.commit()

    # -- replay --------------------------------------------------------
    def completed_shards(self, run_key: str) -> dict[int, tuple[int, int]]:
        """``{shard_index: (shots, failures)}`` recorded for this run."""
        rows = self._conn.execute(
            "SELECT shard_index, shots, failures FROM shard_results "
            "WHERE run_key = ?",
            (run_key,),
        ).fetchall()
        return {int(i): (int(s), int(f)) for i, s, f in rows}

    def merged_counts(self, run_key: str) -> tuple[int, int]:
        """Pooled ``(shots, failures)`` over every recorded shard — the
        content-addressed result-cache read path."""
        row = self._conn.execute(
            "SELECT COALESCE(SUM(shots), 0), COALESCE(SUM(failures), 0) "
            "FROM shard_results WHERE run_key = ?",
            (run_key,),
        ).fetchone()
        return int(row[0]), int(row[1])

    def clear_run(self, run_key: str) -> None:
        """Drop a run's shards (``resume=False`` starts it from scratch)."""
        self._conn.execute(
            "DELETE FROM shard_results WHERE run_key = ?", (run_key,)
        )
        self._conn.execute("DELETE FROM runs WHERE run_key = ?", (run_key,))
        self._conn.commit()

    def runs(self) -> list[tuple[str, str, int, int]]:
        """All registered runs as ``(run_key, kind, shots, num_shards)``."""
        return [
            (k, kind, int(s), int(n))
            for k, kind, s, n in self._conn.execute(
                "SELECT run_key, kind, shots, num_shards FROM runs "
                "ORDER BY created_unix"
            )
        ]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
