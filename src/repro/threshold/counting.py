"""Threshold estimation by exhaustive fault-path counting (paper §5).

"To estimate the accuracy threshold, we follow the circuit Fig. 9 and add
up the contributions to p₀ due to errors ... that have not already been
eliminated in a previous error correction cycle.  We obtain an expression
for p₀ in terms of the gate error and storage error probabilities that we
can equate to 1/21 to find the threshold."

We do exactly that, but mechanically: build the *monolithic* Fig. 9 round
(ancilla encoding, two-block verification, transversal extraction, repeated
syndromes), inject every possible single fault (each location × each Pauli
kind), run the noiseless frame simulation, apply the classical protocol
(verification fix-ups, §3.4 accept-if-repeated syndrome policy, decoding),
and count which fault paths leave residual errors on data qubits.  The
per-qubit path count c gives p₀ = c·ε and the threshold ε₀ = 1/(21·c).

A fault-tolerance *certificate* falls out for free: no single fault may
produce a logical error (weight-2 residual on the data), which the test
suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.codes.steane import SteaneCode
from repro.ft.exrec import resolve_syndrome_policy
from repro.noise.models import NoiseModel
from repro.pauliframe.engine import FrameSimulator

__all__ = ["FullSteaneRound", "count_fault_paths", "threshold_from_counting", "FaultPathReport"]


class FullSteaneRound:
    """The complete Fig. 9 round as one circuit (for fault enumeration).

    Layout: data on [0,7).  For each of the four ancilla blocks
    (bitflip/phaseflip × 2 repetitions): 7 ancilla qubits + 14 verification
    qubits.  Classical bits per block: 14 verification + 7 syndrome.
    """

    def __init__(self, code: SteaneCode | None = None, repetitions: int = 2) -> None:
        self.code = code or SteaneCode()
        self.repetitions = repetitions
        self.kinds = [
            (kind, rep) for rep in range(repetitions) for kind in ("bitflip", "phaseflip")
        ]
        self.num_blocks = len(self.kinds)
        self.num_qubits = 7 + 21 * self.num_blocks
        self.cbits_per_block = 21
        self.num_cbits = self.cbits_per_block * self.num_blocks
        self.circuit, self.fixup_points = self._build()

    def _block_qubits(self, b: int) -> tuple[int, int, int]:
        """(ancilla base, verify1 base, verify2 base) for block b."""
        base = 7 + 21 * b
        return base, base + 7, base + 14

    def _block_cbits(self, b: int) -> tuple[int, int, int]:
        """(verify1 cbits, verify2 cbits, syndrome cbits) bases."""
        base = self.cbits_per_block * b
        return base, base + 7, base + 14

    def _build(self) -> tuple[Circuit, dict[int, int]]:
        code = self.code
        c = Circuit(self.num_qubits, self.num_cbits, name="fig9-full-round")
        enc = code.encoding_circuit()
        fixup_points: dict[int, int] = {}
        for b, (kind, _rep) in enumerate(self.kinds):
            anc, v1, v2 = self._block_qubits(b)
            cb_v1, cb_v2, cb_syn = self._block_cbits(b)
            # Ancilla |0̄> preparation.
            for q in range(7):
                c.reset(anc + q, tag="anc_prep")
            c.compose(enc.remapped({i: anc + i for i in range(7)}, num_qubits=self.num_qubits))
            # Two verification rounds (§3.3).
            for vbase, cbase in ((v1, cb_v1), (v2, cb_v2)):
                for q in range(7):
                    c.reset(vbase + q, tag="verify")
                c.compose(
                    enc.remapped({i: vbase + i for i in range(7)}, num_qubits=self.num_qubits)
                )
                for q in range(7):
                    c.cnot(anc + q, vbase + q, tag="verify")
                for q in range(7):
                    c.measure(vbase + q, cbase + q, tag="verify")
            # Conditional X̄ fix-up happens classically *here* — record the
            # op index so the counting layer can splice in its effect.
            fixup_points[b] = len(c.operations) - 1
            # Extraction (§3.3 / Fig. 7c).
            if kind == "bitflip":
                for q in range(7):
                    c.h(anc + q, tag="syndrome")
                for q in range(7):
                    c.cnot(q, anc + q, tag="syndrome")
            else:
                for q in range(7):
                    c.cnot(anc + q, q, tag="syndrome")
                for q in range(7):
                    c.h(anc + q, tag="syndrome")
            for q in range(7):
                c.measure(anc + q, cb_syn + q, tag="syndrome")
        return c, fixup_points

    # ------------------------------------------------------------------
    def classical_postprocess(
        self, flips: np.ndarray, fx: np.ndarray, fz: np.ndarray, policy: str = "paper"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply verification fix-ups and syndrome corrections.

        ``flips``/``fx``/``fz`` come from the frame simulation of
        :attr:`circuit`; fix-up responses are added by linearity using the
        precomputed transfer of an X̄ injected at each block's fix-up
        point.  Returns corrected data frames ``(fx_data, fz_data)``.
        """
        flips = flips.copy()
        fx = fx.copy()
        fz = fz.copy()
        responses = self._fixup_responses()
        for b in range(self.num_blocks):
            cb_v1, cb_v2, _ = self._block_cbits(b)
            v1 = self.code.destructive_measurement_decode(flips[:, cb_v1 : cb_v1 + 7])
            v2 = self.code.destructive_measurement_decode(flips[:, cb_v2 : cb_v2 + 7])
            fire = (v1 & v2).astype(bool)
            if fire.any():
                r_flips, r_fx, r_fz = responses[b]
                flips[fire] ^= r_flips
                fx[fire] ^= r_fx
                fz[fire] ^= r_fz
        x_syn = np.zeros((flips.shape[0], self.repetitions, 3), dtype=np.uint8)
        z_syn = np.zeros((flips.shape[0], self.repetitions, 3), dtype=np.uint8)
        h = self.code.hz
        for b, (kind, rep) in enumerate(self.kinds):
            _, _, cb_syn = self._block_cbits(b)
            bits = flips[:, cb_syn : cb_syn + 7]
            syn = (bits @ h.T.astype(np.int64)) % 2
            if kind == "bitflip":
                x_syn[:, rep] = syn
            else:
                z_syn[:, rep] = syn
        for syn, frame in ((x_syn, fx), (z_syn, fz)):
            accepted, act = resolve_syndrome_policy(syn, policy)
            corr = self.code.decode_bitflip_syndrome(accepted)
            corr[~act.astype(bool)] = 0
            frame[:, :7] ^= corr
        return fx[:, :7], fz[:, :7]

    def _fixup_responses(self):
        cached = getattr(self, "_fixup_cache", None)
        if cached is not None:
            return cached
        sim = FrameSimulator(self.circuit, NoiseModel())
        responses = {}
        for b in range(self.num_blocks):
            anc, _, _ = self._block_qubits(b)
            spec = [[(self.fixup_points[b], anc + q, "X") for q in range(7)]]
            res = sim.run(1, seed=0, fault_injections=spec)
            responses[b] = (res.meas_flips[0].copy(), res.fx[0].copy(), res.fz[0].copy())
        self._fixup_cache = responses
        return responses


@dataclass
class FaultPathReport:
    """Result of exhaustive single-fault counting.

    Attributes
    ----------
    total_fault_cases: locations × Pauli kinds enumerated.
    benign: cases leaving no residual data error.
    residual_one: cases leaving exactly one residual data error
        (the contributions to next round's p₀).
    residual_multi: cases leaving ≥2 residual data errors (must be 0 for
        a fault-tolerant circuit; asserted by tests).
    logical_failures: cases whose residual is a logical operator (must be 0).
    per_qubit_paths: average count of (location, kind) cases hitting each
        data qubit, i.e. the coefficient c with p₀ = (c/3)·ε.
    """

    total_fault_cases: int
    benign: int
    residual_one: int
    residual_multi: int
    logical_failures: int
    per_qubit_paths: float


def count_fault_paths(
    round_builder: FullSteaneRound | None = None, policy: str = "paper"
) -> FaultPathReport:
    """Enumerate every single fault in the Fig. 9 round and classify it."""
    rnd = round_builder or FullSteaneRound()
    code = rnd.code
    circuit = rnd.circuit
    specs: list[tuple[int, int, str]] = []
    for i, op in enumerate(circuit):
        if op.gate == "TICK":
            continue
        for q in op.qubits:
            for kind in ("X", "Y", "Z"):
                specs.append((i, q, kind))
    sim = FrameSimulator(circuit, NoiseModel())
    res = sim.run(len(specs), seed=0, fault_injections=specs)
    fx, fz = rnd.classical_postprocess(res.meas_flips, res.fx, res.fz, policy)
    # Residuals modulo the stabilizer: ideal-correct then inspect.
    cfx, cfz = code.correct_frame(fx, fz)
    action = code.logical_action_of_frame(cfx, cfz)
    logical = action.any(axis=1)
    raw_weight = (fx | fz).sum(axis=1)
    # "Residual error" counting uses the pre-ideal-EC frames: these are the
    # errors present when the next cycle begins.
    benign = int((raw_weight == 0).sum())
    one = int((raw_weight == 1).sum())
    multi = int((raw_weight >= 2).sum())
    per_qubit = float((fx | fz).sum() / 7.0)
    return FaultPathReport(
        total_fault_cases=len(specs),
        benign=benign,
        residual_one=one,
        residual_multi=multi,
        logical_failures=int(logical.sum()),
        per_qubit_paths=per_qubit,
    )


def threshold_from_counting(
    report: FaultPathReport, coefficient: float = 21.0
) -> float:
    """ε₀ from the paper's method: p₀ = (paths/3)·ε = 1/A at threshold.

    Each enumerated location fails with probability ε, and the three Pauli
    kinds split it — hence the /3.  Returns ε₀ = 3 / (A · per_qubit_paths).
    """
    if report.per_qubit_paths <= 0:
        raise ValueError("no fault paths reach the data; counting is vacuous")
    return 3.0 / (coefficient * report.per_qubit_paths)
