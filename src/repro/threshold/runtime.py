"""Resilient execution layer for the sharded Monte Carlo driver.

PR 5's ``pool.map`` was all-or-nothing: one crashed, hung, or OOM-killed
worker threw ``BrokenProcessPool`` through the whole scan and discarded
every completed shard.  This module replaces it with per-shard ``submit``
+ completion supervision:

* **per-shard timeouts** — a shard running longer than ``shard_timeout``
  is declared hung; the pool (which cannot cancel a running future) is
  killed and rebuilt, and the shard retries;
* **bounded retry with exponential backoff** — failed shards retry up to
  ``max_retries`` times; pool rebuilds back off exponentially
  (``backoff * 2**k``, capped) so a crash-looping environment is not
  hammered;
* **pool replacement on ``BrokenProcessPool``** — a dead worker evicts
  and replaces the cached executor instead of poisoning every later call;
* **graceful degradation** — a shard that keeps failing in workers (or a
  pool that cannot be rebuilt) runs in-process: the run finishes correct,
  with a :class:`RunDegraded` warning, and never loses completed work;
* **a structured exception taxonomy** — :class:`ShardTimeout`,
  :class:`ShardRetryExhausted` (with the last underlying error attached)
  replace bare pool errors;
* **checkpoint journaling / result caching** — with ``checkpoint=`` set,
  every finished shard streams into
  :class:`repro.threshold.journal.CheckpointJournal` and ``resume=True``
  replays finished shards from disk, re-executing only the remainder; a
  fully cached run returns its pooled counts without ever touching a
  worker pool;
* **a storage-fault firewall** — every journal open/read/write goes
  through :class:`_ResilientJournal`: transient lock contention gets a
  bounded retry with backoff, any other ``sqlite3`` / ``OSError`` fault
  (disk full, readonly filesystem, torn WAL, corrupt file) degrades the
  run to *uncheckpointed* execution with a
  :class:`~repro.threshold.journal.JournalDegraded` warning — storage
  faults may cost durability and cache reuse, never the run — and rows
  failing checksum/plan validation are quarantined
  (:class:`~repro.threshold.journal.CacheCorrupt`) and recomputed instead
  of replayed.

Correctness under all of this is free: each shard is a pure function of
its ``(kind, args, shard_shots, SeedSequence)`` spec, so a retried,
degraded, or resumed shard returns bit-for-bit the counts a clean run
would have — the chaos suite (``tests/test_threshold_runtime.py``)
asserts exactly that.

Attempt accounting under ``BrokenProcessPool`` is deliberately
conservative: the executor cannot say *which* running shard killed the
worker, so every shard that was in flight when the pool broke is charged
an attempt.  An innocent bystander can therefore exhaust its retries
under sustained crashing — and then it degrades to in-process execution
and still finishes correct.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sqlite3
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _fut_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.threshold.chaos import ChaosError, ChaosPlan, IOChaosPlan, _UnpicklableResult
from repro.threshold.journal import (
    CacheCorrupt,
    CheckpointJournal,
    JournalDegraded,
    JournalMismatch,
    JournalSchemaError,
)

__all__ = [
    "DrainRequested",
    "ResilienceOptions",
    "RunDegraded",
    "ShardRetryExhausted",
    "ShardTimeout",
    "execute_shards",
]

# Supervision loop granularity: how often hung-worker detection runs and
# how long one wait() blocks when nothing completes.
_TICK = 0.05
# Ceiling on any single backoff sleep so a deep retry chain cannot stall
# a scan for minutes.
_BACKOFF_CAP = 5.0
# Exit code used by chaos "crash" faults (visible in worker diagnostics).
_CHAOS_EXIT_CODE = 13
# Budget for reaping workers at interpreter exit / pool replacement.
_REAP_SECONDS = 2.0
# Bounded retry budget for transient journal lock contention ("database is
# locked"/"busy") before a write degrades the run to uncheckpointed.
_JOURNAL_LOCK_RETRIES = 4


# ----------------------------------------------------------------------
# Exception taxonomy.
# ----------------------------------------------------------------------
class ShardTimeout(RuntimeError):
    """A shard ran longer than ``shard_timeout`` — its worker is presumed
    hung and the pool is replaced.  Appears as the underlying error of a
    :class:`ShardRetryExhausted` when a shard hangs every attempt."""

    def __init__(self, shard_index: int, attempt: int, timeout: float) -> None:
        super().__init__(
            f"shard {shard_index} exceeded shard_timeout={timeout}s on "
            f"attempt {attempt}; presuming the worker hung"
        )
        self.shard_index = shard_index
        self.attempt = attempt
        self.timeout = timeout


class ShardRetryExhausted(RuntimeError):
    """A shard failed every allowed attempt (1 + ``max_retries``).  Raised
    only when degradation is disabled or the in-process fallback itself
    fails; carries the last underlying error as ``last_error`` (and as
    ``__cause__``)."""

    def __init__(self, shard_index: int, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"shard {shard_index} failed {attempts} attempt(s); "
            f"last error: {last_error!r}"
        )
        self.shard_index = shard_index
        self.attempts = attempts
        self.last_error = last_error


class RunDegraded(UserWarning):
    """The run finished correct but not as planned: shards fell back to
    in-process execution after exhausting pool retries (or the pool could
    not be rebuilt).  Counts are unaffected — shards are pure functions
    of their specs."""


class DrainRequested(KeyboardInterrupt):
    """Raised (typically from an ``on_shard_complete`` callback) to stop a
    sharded run at the next shard boundary.  Subclasses
    ``KeyboardInterrupt`` deliberately: the runtime already handles Ctrl-C
    by evicting the cached pool and unwinding cleanly, and a drain must
    take exactly that path — every shard finished so far is journaled, so
    a requeued job resumes re-executing only the remainder."""


@dataclass(frozen=True)
class ResilienceOptions:
    """Knobs for :func:`execute_shards` (all sharded entry points thread
    these through as keyword arguments).

    ``max_retries`` bounds *re*-executions per shard (total attempts =
    ``1 + max_retries``).  ``shard_timeout=None`` disables hung-worker
    detection.  ``backoff`` seeds the exponential retry/rebuild sleep
    (shard retries *and* journal lock retries).  ``checkpoint`` names the
    journal/result-cache database; ``resume=False`` clears any prior rows
    for this run key first.  ``chaos`` deterministically injects worker
    faults and ``io_chaos`` storage faults (tests only).  ``degrade=False``
    turns exhaustion into :class:`ShardRetryExhausted` instead of
    in-process fallback (journal degradation is never fatal regardless —
    losing durability is not losing the run).

    ``on_shard_complete`` is called as ``fn(shard_index, shots, failures)``
    after each finished shard is journaled — the scheduler uses it to
    heartbeat its lease and to honor drain requests (a callback raising
    :class:`DrainRequested` stops the run at the shard boundary, with
    everything finished so far already durable).  The callback runs on the
    driver side, never in a worker, so it need not be picklable.
    """

    max_retries: int = 2
    shard_timeout: float | None = None
    backoff: float = 0.1
    checkpoint: str | Path | None = None
    resume: bool = True
    chaos: ChaosPlan | None = None
    degrade: bool = True
    io_chaos: IOChaosPlan | None = None
    on_shard_complete: object | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


# ----------------------------------------------------------------------
# Worker side.  Module-level so spawn can pickle it by qualified name; the
# sharded import is deferred to call time (worker process) to keep the
# sharded -> runtime import edge acyclic.
# ----------------------------------------------------------------------
def _guarded_run_shard(payload: tuple) -> tuple[int, int, int]:
    index, spec, attempt, chaos = payload
    fault = chaos.fault_for(index, attempt) if chaos is not None else None
    if fault == "crash":
        os._exit(_CHAOS_EXIT_CODE)
    elif fault == "hang":
        time.sleep(chaos.hang_seconds)
    elif fault == "exception":
        raise ChaosError(f"injected exception: shard {index} attempt {attempt}")
    from repro.threshold.sharded import _run_shard

    shots, failures = _run_shard(spec)
    if fault == "unpicklable":
        return _UnpicklableResult((index, shots, failures))  # type: ignore[return-value]
    return index, shots, failures


# ----------------------------------------------------------------------
# Pool cache.  Spawned pools cost ~0.6 s to start, so they are cached per
# worker count and reused across calls — a grid scan pays the startup
# once.  Workers are stateless between shards, so reuse cannot leak state.
# ----------------------------------------------------------------------
_pool_cache: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _pool_cache.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        # A worker died while the pool sat idle in the cache (external
        # kill, OOM): evict the carcass now instead of letting the next
        # submit() throw BrokenProcessPool through the caller.
        _kill_pool(workers)
        pool = None
    if pool is None:
        ctx = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        _pool_cache[workers] = pool
    return pool


def _reap_processes(procs: list, deadline: float) -> None:
    """Join workers until ``deadline``; terminate and re-join stragglers."""
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        if proc.is_alive():
            proc.join(0.2)


def _kill_pool(workers: int) -> None:
    """Evict and tear down the cached pool (hung or broken workers).

    Termination is safe mid-shard: shards are side-effect-free pure
    functions, and anything killed here is re-executed from its spec.
    """
    pool = _pool_cache.pop(workers, None)
    if pool is None:
        return
    procs = list((getattr(pool, "_processes", None) or {}).values())
    # repro: disable=RPL303 -- workers are terminated and reaped just below
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    _reap_processes(procs, time.monotonic() + _REAP_SECONDS)


def _shutdown_pools() -> None:
    """atexit hook: cancel pending work, then *briefly wait* for workers.

    ``shutdown(wait=False)`` alone can leave spawn workers alive at
    interpreter teardown, leaking semaphore trackers and emitting
    ``ResourceWarning``; joining with a small budget (then terminating
    stragglers) lets them exit cleanly without ever wedging exit on a
    hung worker.
    """
    pools = list(_pool_cache.values())
    _pool_cache.clear()
    all_procs = []
    for pool in pools:
        all_procs.extend((getattr(pool, "_processes", None) or {}).values())
        # repro: disable=RPL303 -- stragglers reaped by _reap_processes below
        pool.shutdown(wait=False, cancel_futures=True)
    _reap_processes(all_procs, time.monotonic() + _REAP_SECONDS)


atexit.register(_shutdown_pools)


# ----------------------------------------------------------------------
# Storage-fault firewall.
# ----------------------------------------------------------------------
def _is_lock_error(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class _ResilientJournal:
    """Wraps :class:`CheckpointJournal` in the run's fault philosophy:
    every operation either succeeds (after a bounded lock-contention
    retry) or degrades the run to uncheckpointed execution with a
    :class:`JournalDegraded` warning — a storage fault may cost durability
    and cache reuse, never the run itself.

    After a hard fault the journal handle is dropped and every later
    operation is a silent no-op: the run was warned once, loudly, and then
    left alone to finish.
    """

    def __init__(self, checkpoint: str | Path, run_key: str, opts: "ResilienceOptions") -> None:
        self._journal: CheckpointJournal | None = None
        self._run_key = run_key
        self._backoff = opts.backoff
        try:
            self._journal = CheckpointJournal(checkpoint, io_chaos=opts.io_chaos)
        except JournalSchemaError:
            # Deliberate migration-or-refuse: an unknown schema is a user
            # decision (wrong file / newer writer), not a runtime fault.
            raise
        except (sqlite3.Error, OSError) as exc:
            self._degrade("opening", exc)

    @property
    def active(self) -> bool:
        return self._journal is not None

    def _degrade(self, doing: str, exc: BaseException) -> None:
        warnings.warn(
            f"checkpoint journal unavailable while {doing} ({exc!r}); "
            f"continuing uncheckpointed — results are unaffected, only "
            f"crash-resume durability and cache reuse are lost",
            JournalDegraded,
            stacklevel=5,
        )
        if self._journal is not None:
            try:
                self._journal.close()
            except (sqlite3.Error, OSError):
                # Best-effort close of an already-degraded journal: the
                # JournalDegraded warning above is the observable record of
                # the fault; a second failure here adds nothing.
                pass
        self._journal = None

    def _attempt(self, doing: str, fn):
        """Run one journal operation; retry lock contention, degrade on
        anything else.  Returns the operation's result or None."""
        if self._journal is None:
            return None
        for attempt in range(1, 2 + _JOURNAL_LOCK_RETRIES):
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                if _is_lock_error(exc) and attempt <= _JOURNAL_LOCK_RETRIES:
                    _backoff_sleep(self._backoff, attempt)
                    continue
                self._degrade(doing, exc)
                return None
            except (sqlite3.Error, OSError) as exc:
                self._degrade(doing, exc)
                return None
        return None  # pragma: no cover - loop always returns or degrades

    def register(
        self, kind: str, shots: int, num_shards: int, physics_key: str | None
    ) -> None:
        def _do() -> None:
            try:
                self._journal.register_run(
                    self._run_key, kind, shots, num_shards, physics_key
                )
            except JournalMismatch as exc:
                # Same run key, contradictory metadata: definitionally
                # stale or corrupt (the key pins kind/shots/shard count).
                # Quarantine and start the run fresh instead of dying.
                warnings.warn(
                    f"cached metadata for run {self._run_key[:12]}… "
                    f"contradicts this run ({exc}); quarantining its rows "
                    f"and recomputing",
                    CacheCorrupt,
                    stacklevel=7,
                )
                self._journal.quarantine_run(self._run_key, "metadata mismatch")
                self._journal.register_run(
                    self._run_key, kind, shots, num_shards, physics_key
                )

        self._attempt("registering the run", _do)

    def resume_counts(self, sizes: list[int]) -> dict[int, tuple[int, int]]:
        counts = self._attempt(
            "reading completed shards",
            lambda: self._journal.completed_shards(self._run_key, expected_sizes=sizes),
        )
        return counts or {}

    def record(self, idx: int, shots: int, failures: int) -> None:
        self._attempt(
            "recording a finished shard",
            lambda: self._journal.record_shard(self._run_key, idx, shots, failures),
        )

    def clear(self) -> None:
        self._attempt(
            "clearing the run", lambda: self._journal.clear_run(self._run_key)
        )

    def close(self) -> None:
        if self._journal is not None:
            try:
                self._journal.close()
            except (sqlite3.Error, OSError) as exc:
                # The run's counts are already pooled; a failed close can
                # only cost WAL-truncate hygiene — but it must stay
                # observable, not vanish.
                warnings.warn(
                    f"checkpoint journal failed to close cleanly ({exc!r}); "
                    f"results are unaffected, a -wal/-shm file may be left "
                    f"behind",
                    JournalDegraded,
                    stacklevel=2,
                )
            self._journal = None


# ----------------------------------------------------------------------
# Driver side.
# ----------------------------------------------------------------------
def _run_shard_inprocess(spec: tuple) -> tuple[int, int]:
    from repro.threshold import sharded as _sharded

    return _sharded._run_shard(spec)


def _backoff_sleep(backoff: float, step: int) -> None:
    if backoff > 0:
        time.sleep(min(backoff * (2 ** max(step - 1, 0)), _BACKOFF_CAP))


def execute_shards(
    specs: list[tuple],
    workers: int,
    options: ResilienceOptions | None = None,
    run_key: str | None = None,
    physics_key: str | None = None,
) -> list[tuple[int, int]]:
    """Execute every shard spec, surviving worker *and* storage faults;
    returns ``(shots, failures)`` per shard, in shard order.

    ``workers == 1`` executes in-process (with the same retry accounting
    and journaling).  With ``options.checkpoint`` set, the store is
    consulted **before computing**: previously recorded shards (validated
    — checksummed, plan-checked; bad rows quarantined with
    :class:`CacheCorrupt` and recomputed) are replayed from disk when
    ``options.resume``, and a full hit returns without a worker pool ever
    being created.  Completed shards stream into the journal under
    ``run_key`` (tagged with ``physics_key`` for cross-run pooling), and
    every storage fault on the way degrades the run to uncheckpointed
    execution (:class:`JournalDegraded`) instead of killing it.
    """
    opts = options or ResilienceOptions()
    results: dict[int, tuple[int, int]] = {}
    pending = list(range(len(specs)))
    journal = None
    if opts.checkpoint is not None:
        if run_key is None:
            raise ValueError("checkpointed execution requires a run_key")
        journal = _ResilientJournal(opts.checkpoint, run_key, opts)
        if journal.active:
            kind = specs[0][0] if specs else "?"
            total_shots = sum(spec[2] for spec in specs)
            if not opts.resume:
                journal.clear()
            journal.register(kind, total_shots, len(specs), physics_key)
            if opts.resume:
                sizes = [spec[2] for spec in specs]
                for idx, counts in journal.resume_counts(sizes).items():
                    results[idx] = counts
                pending = [i for i in pending if i not in results]
    try:
        if pending:
            if workers == 1:
                _execute_serial(specs, pending, results, journal, opts)
            else:
                _execute_pool(specs, pending, workers, results, journal, opts)
    finally:
        if journal is not None:
            journal.close()
    return [results[i] for i in range(len(specs))]


def _record(
    results: dict,
    journal: "_ResilientJournal | None",
    idx: int,
    shots: int,
    failures: int,
    opts: "ResilienceOptions | None" = None,
) -> None:
    results[idx] = (shots, failures)
    if journal is not None:
        journal.record(idx, shots, failures)
    # The callback fires strictly *after* journaling: if it raises
    # DrainRequested, every shard reported so far is already durable and a
    # resumed run re-executes only the remainder.
    if opts is not None and opts.on_shard_complete is not None:
        opts.on_shard_complete(idx, shots, failures)


def _degrade_shard(
    specs: list,
    idx: int,
    attempts: int,
    last_error: BaseException | None,
    results: dict,
    journal,
    opts: ResilienceOptions,
) -> None:
    """Last resort: run the shard in-process (no chaos, no pool).  The
    result is exact — shards are pure — so the run finishes correct."""
    if not opts.degrade:
        raise ShardRetryExhausted(idx, attempts, last_error) from last_error
    warnings.warn(
        f"shard {idx} failed {attempts} attempt(s) "
        f"(last error: {last_error!r}); degrading to in-process execution — "
        f"pooled counts are unaffected",
        RunDegraded,
        stacklevel=2,
    )
    try:
        shots, failures = _run_shard_inprocess(specs[idx])
    except Exception as exc:
        raise ShardRetryExhausted(idx, attempts + 1, exc) from exc
    _record(results, journal, idx, shots, failures, opts)


def _execute_serial(
    specs: list,
    pending: list[int],
    results: dict,
    journal,
    opts: ResilienceOptions,
) -> None:
    """In-process execution with the same retry/degradation accounting.

    Chaos faults of every kind are injected as :class:`ChaosError` here —
    a real crash/hang would take down the driver itself, and what is
    under test is the retry bookkeeping (see :mod:`repro.threshold.chaos`).
    """
    allowed = 1 + opts.max_retries
    for idx in pending:
        last_error: BaseException | None = None
        for attempt in range(1, allowed + 1):
            fault = opts.chaos.fault_for(idx, attempt) if opts.chaos else None
            try:
                if fault is not None:
                    raise ChaosError(
                        f"injected {fault} (as exception, in-process): "
                        f"shard {idx} attempt {attempt}"
                    )
                shots, failures = _run_shard_inprocess(specs[idx])
            except Exception as exc:
                last_error = exc
                if attempt < allowed:
                    _backoff_sleep(opts.backoff, attempt)
                continue
            _record(results, journal, idx, shots, failures, opts)
            break
        else:
            _degrade_shard(
                specs, idx, allowed, last_error, results, journal, opts
            )


def _execute_pool(
    specs: list,
    pending: list[int],
    workers: int,
    results: dict,
    journal,
    opts: ResilienceOptions,
) -> None:
    allowed = 1 + opts.max_retries
    attempts = {i: 0 for i in pending}
    last_error: dict[int, BaseException] = {}
    degraded: list[int] = []
    rebuilds = 0
    futures: dict = {}  # Future -> shard index
    started: dict = {}  # Future -> monotonic stamp when first seen running

    try:
        pool = _get_pool(workers)

        def submit(idx: int, new_attempt: bool = True) -> None:
            nonlocal pool, rebuilds
            if new_attempt:
                attempts[idx] += 1
            payload = (idx, specs[idx], attempts[idx], opts.chaos)
            try:
                fut = pool.submit(_guarded_run_shard, payload)
            except BrokenProcessPool:
                # The pool broke between supervision ticks (or was already
                # broken at submit time): replace it and resubmit at the
                # same attempt — no worker ever ran this shard.  In-flight
                # futures from the dead pool resolve BrokenProcessPool and
                # are handled by the supervision loop as usual.
                _kill_pool(workers)
                rebuilds += 1
                _backoff_sleep(opts.backoff, rebuilds)
                pool = _get_pool(workers)
                fut = pool.submit(_guarded_run_shard, payload)
            futures[fut] = idx

        def on_failure(idx: int, exc: BaseException) -> bool:
            """Charge an attempt's failure; True → retry, False → degraded."""
            last_error[idx] = exc
            if attempts[idx] >= allowed:
                if not opts.degrade:
                    raise ShardRetryExhausted(idx, attempts[idx], exc) from exc
                degraded.append(idx)
                return False
            return True

        for idx in pending:
            submit(idx)

        while futures:
            done, not_done = _fut_wait(
                set(futures), timeout=_TICK, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            for fut in not_done:
                if fut not in started and fut.running():
                    started[fut] = now

            pool_broken = False
            retries: list[int] = []
            for fut in done:
                idx = futures.pop(fut)
                started.pop(fut, None)
                try:
                    _, shots, failures = fut.result()
                except BrokenProcessPool as exc:
                    pool_broken = True
                    if on_failure(idx, exc):
                        retries.append(idx)
                    continue
                except Exception as exc:
                    if on_failure(idx, exc):
                        retries.append(idx)
                    continue
                _record(results, journal, idx, shots, failures, opts)

            timed_out: set[int] = set()
            if opts.shard_timeout is not None:
                for fut, t0 in started.items():
                    if now - t0 > opts.shard_timeout:
                        timed_out.add(futures[fut])

            if pool_broken or timed_out:
                # The executor can neither cancel a running future nor
                # survive a dead worker: abandon in-flight futures, kill
                # and replace the pool, and resubmit everything unfinished.
                # Timed-out shards are charged a failed attempt; innocent
                # in-flight shards are resubmitted at their same attempt.
                survivors: list[int] = []
                for fut, idx in futures.items():
                    if idx in timed_out:
                        exc = ShardTimeout(idx, attempts[idx], opts.shard_timeout)
                        if on_failure(idx, exc):
                            retries.append(idx)
                    else:
                        survivors.append(idx)
                futures.clear()
                started.clear()
                _kill_pool(workers)
                rebuilds += 1
                _backoff_sleep(opts.backoff, rebuilds)
                try:
                    pool = _get_pool(workers)
                except Exception as exc:
                    # Pool cannot be rebuilt (fd/memory exhaustion, ...):
                    # degrade every unfinished shard rather than lose the run.
                    if not opts.degrade:
                        raise
                    warnings.warn(
                        f"worker pool could not be rebuilt ({exc!r}); running "
                        f"{len(retries) + len(survivors)} remaining shard(s) "
                        f"in-process",
                        RunDegraded,
                        stacklevel=2,
                    )
                    degraded.extend(retries)
                    degraded.extend(survivors)
                    break
                for idx in survivors:
                    submit(idx, new_attempt=False)
                for idx in retries:
                    submit(idx)
            elif retries:
                _backoff_sleep(opts.backoff, max(attempts[i] for i in retries))
                for idx in retries:
                    submit(idx)
    except ShardRetryExhausted:
        for fut in futures:
            fut.cancel()
        raise
    except (KeyboardInterrupt, SystemExit):
        # Never leave a cached executor holding orphaned in-flight
        # futures: a later call would reuse it and inherit the mess.
        _kill_pool(workers)
        raise

    for idx in sorted(set(degraded)):
        _degrade_shard(
            specs,
            idx,
            attempts[idx],
            last_error.get(idx),
            results,
            journal,
            opts,
        )
