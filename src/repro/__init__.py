"""repro — a from-scratch reproduction of Preskill's *Fault-Tolerant
Quantum Computation* (quant-ph/9712048).

Subpackages, bottom-up:

* :mod:`repro.gf2` / :mod:`repro.classical` — binary linear algebra and the
  classical coding substrate (Hamming [7,4,3], majority voting, von
  Neumann multiplexing);
* :mod:`repro.paulis` / :mod:`repro.circuits` — Pauli algebra and the
  circuit IR shared by all simulators;
* :mod:`repro.statevector` / :mod:`repro.stabilizer` /
  :mod:`repro.pauliframe` — the three simulation backends (exact dense,
  CHP tableau, vectorized error-frame Monte Carlo);
* :mod:`repro.noise` — the §6 error models (stochastic, coherent, leakage);
* :mod:`repro.codes` — Steane [[7,1,3]], five-qubit, Shor-9, repetition,
  quantum Hamming family, concatenation;
* :mod:`repro.ft` — the fault-tolerant gadget toolbox of §3–§4;
* :mod:`repro.threshold` — flow equations, scaling laws, fault-path
  counting, Monte-Carlo thresholds, factoring resources (§5–§6);
* :mod:`repro.topo` — topological quantum computation (§7);
* :mod:`repro.core` — the high-level user API.
"""

from repro.core import FaultTolerancePlanner, LogicalMemory, UnencodedMemory

__version__ = "1.0.0"

__all__ = ["FaultTolerancePlanner", "LogicalMemory", "UnencodedMemory", "__version__"]
