"""Stabilizer (Clifford) simulation via binary tableaux.

The paper's codes, syndrome-extraction circuits, and transversal gates are
all Clifford objects; a tableau simulator verifies them at widths the dense
simulator cannot reach (e.g. the full Fig. 9 recovery circuit with two
14-qubit ancilla rounds).
"""

from repro.stabilizer.tableau import StabilizerSimulator

__all__ = ["StabilizerSimulator"]
