"""Aaronson–Gottesman CHP tableau simulator.

State is tracked as 2n generators (n destabilizers + n stabilizers) in a
binary (x|z|r) tableau; Clifford gates are column updates and measurement is
row reduction — O(n^2) per measurement, entirely vectorized row operations.

Reference update rules follow Aaronson & Gottesman, "Improved simulation of
stabilizer circuits" (2004); this is an independent implementation on NumPy
uint8 matrices.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.paulis.pauli import Pauli
from repro.util.rng import as_rng

__all__ = ["StabilizerSimulator"]


class StabilizerSimulator:
    """Pure stabilizer state on ``num_qubits`` qubits, initially |0...0>."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        n = num_qubits
        self.n = n
        # Rows 0..n-1: destabilizers (initially X_i); rows n..2n-1:
        # stabilizers (initially Z_i).  Extra scratch row 2n for measurement.
        self.x = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.z = np.zeros((2 * n + 1, n), dtype=np.uint8)
        self.r = np.zeros(2 * n + 1, dtype=np.uint8)
        self.x[np.arange(n), np.arange(n)] = 1
        self.z[n + np.arange(n), np.arange(n)] = 1

    # -- gates -----------------------------------------------------------
    def h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = self.z[:, a].copy(), self.x[:, a].copy()

    def s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def sdg(self, a: int) -> None:
        # S^3 = S†
        self.s(a)
        self.s(a)
        self.s(a)

    def x_gate(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def z_gate(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def y_gate(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def cnot(self, a: int, b: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, b] & (self.x[:, b] ^ self.z[:, a] ^ 1)
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cnot(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.cnot(a, b)
        self.cnot(b, a)
        self.cnot(a, b)

    def rprime(self, a: int) -> None:
        # R' of Eq. (20) equals e^{iπ/4}·√X† = H·S†·H up to global phase;
        # it conjugates Y -> -Z, turning Y-type checks into Z-type readout.
        self.h(a)
        self.sdg(a)
        self.h(a)

    # -- measurement -------------------------------------------------------
    def _rowsum(self, h: int, i: int) -> None:
        """Row h *= row i, with exact phase tracking (the g-function)."""
        self._rowsum_batch(np.array([h], dtype=np.intp), i)

    def _rowsum_batch(self, rows: np.ndarray, i: int) -> None:
        """Row h *= row i for every h in ``rows``, in one pass.

        Valid because all targets multiply by the *same* unmodified source
        row, so the sequential loop the CHP paper writes has no
        inter-iteration dependence; the g-function phase is accumulated as
        a vectorized sum per target row.
        """
        if rows.size == 0:
            return
        x1 = self.x[i].astype(np.int64)
        z1 = self.z[i].astype(np.int64)
        x2 = self.x[rows].astype(np.int64)
        z2 = self.z[rows].astype(np.int64)
        g = (
            x1 * z1 * (z2 - x2)
            + x1 * (1 - z1) * z2 * (2 * x2 - 1)
            + (1 - x1) * z1 * x2 * (1 - 2 * z2)
        ).sum(axis=1)
        total = (2 * self.r[rows].astype(np.int64) + 2 * int(self.r[i]) + g) % 4
        self.r[rows] = (total // 2).astype(np.uint8)
        self.x[rows] ^= self.x[i]
        self.z[rows] ^= self.z[i]

    def _accumulate_phase(self, sources: np.ndarray) -> int:
        """Outcome bit of multiplying stabilizer rows ``sources`` into a
        zeroed scratch row, without touching the tableau.

        Each step of the sequential scratch accumulation satisfies
        2r' ≡ 2r + 2r_i + g(row_i, scratch) (mod 4), so the final phase is
        the mod-4 sum of per-step contributions; the running scratch value
        entering step j is the exclusive prefix XOR of the source rows,
        computed here as one cumulative sum.
        """
        if sources.size == 0:
            return 0
        xs = self.x[sources].astype(np.int64)
        zs = self.z[sources].astype(np.int64)
        px = (np.cumsum(xs, axis=0) - xs) % 2  # scratch x entering step j
        pz = (np.cumsum(zs, axis=0) - zs) % 2
        g = (
            xs * zs * (pz - px)
            + xs * (1 - zs) * pz * (2 * px - 1)
            + (1 - xs) * zs * px * (1 - 2 * pz)
        ).sum()
        total = (2 * int(self.r[sources].astype(np.int64).sum()) + int(g)) % 4
        return int(total // 2)

    def measure(
        self,
        a: int,
        rng: np.random.Generator | None = None,
        force: int | None = None,
    ) -> int:
        """Projective Z measurement on qubit ``a``."""
        n = self.n
        stab_x = self.x[n : 2 * n, a]
        anticommuting = np.nonzero(stab_x)[0]
        if anticommuting.size:
            p = n + int(anticommuting[0])
            # Random outcome.
            if force is not None:
                outcome = int(force)
            else:
                outcome = int(as_rng(rng).integers(0, 2))
            rows = np.nonzero(self.x[: 2 * n, a])[0]
            self._rowsum_batch(rows[rows != p], p)
            # Destabilizer p-n := old stabilizer p; stabilizer p := ±Z_a.
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, a] = 1
            self.r[p] = np.uint8(outcome)
            return outcome
        # Deterministic outcome: the scratch-row accumulation of the CHP
        # algorithm, with the whole phase sum vectorized in one pass.
        sources = np.nonzero(self.x[:n, a])[0] + n
        outcome = self._accumulate_phase(sources)
        if force is not None and force != outcome:
            raise ValueError(f"forced outcome {force} but measurement is deterministically {outcome}")
        return outcome

    def reset(self, a: int, rng: np.random.Generator | None = None) -> None:
        if self.measure(a, rng) == 1:
            self.x_gate(a)

    def measure_pauli(
        self,
        pauli: Pauli,
        rng: np.random.Generator | None = None,
        force: int | None = None,
    ) -> int:
        """Projective measurement of an arbitrary Hermitian Pauli.

        Generalizes the CHP single-qubit measurement: rows anticommuting
        with P are identified by the symplectic product; if a stabilizer
        row anticommutes the outcome is random and P (with the outcome
        sign) replaces that row, otherwise the outcome is the deterministic
        expectation.  This is the workhorse of preparation-by-measurement
        (§3.5: "error correction will project it onto the space spanned by
        {|0̄>, |1̄>}").
        """
        if pauli.n != self.n:
            raise ValueError("Pauli size mismatch")
        if (pauli.phase - int(np.sum(pauli.x & pauli.z))) % 2 != 0:
            raise ValueError(f"{pauli!r} is not Hermitian")
        n = self.n
        px64 = pauli.x.astype(np.int64)
        pz64 = pauli.z.astype(np.int64)
        anti = (
            self.x[: 2 * n].astype(np.int64) @ pz64
            + self.z[: 2 * n].astype(np.int64) @ px64
        ) % 2
        stab_anti = np.nonzero(anti[n:])[0]
        if stab_anti.size == 0:
            value = self.pauli_expectation(pauli)
            if value is None:  # pragma: no cover - impossible for pure states
                raise AssertionError("commuting Pauli with indeterminate value")
            outcome = 0 if value == 1 else 1
            if force is not None and force != outcome:
                raise ValueError(f"forced {force} but outcome is deterministically {outcome}")
            return outcome
        p = n + int(stab_anti[0])
        outcome = int(force) if force is not None else int(as_rng(rng).integers(0, 2))
        anti_rows = np.nonzero(anti)[0]
        self._rowsum_batch(anti_rows[anti_rows != p], p)
        # Destabilizer p−n := old stabilizer row p; stabilizer row p := ±P.
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = pauli.x
        self.z[p] = pauli.z
        # Row phase r counts -1's relative to the canonical i^{#Y} form.
        y_count = int(np.sum(pauli.x & pauli.z))
        base_phase = (pauli.phase - y_count) % 4
        if base_phase not in (0, 2):  # pragma: no cover - Hermitian guard above
            raise AssertionError("non-real Hermitian phase")
        self.r[p] = np.uint8(((base_phase // 2) + outcome) % 2)
        return outcome

    # -- queries -----------------------------------------------------------
    def stabilizer_generators(self) -> list[Pauli]:
        """The n stabilizer rows as signed Pauli operators."""
        out = []
        for i in range(self.n, 2 * self.n):
            out.append(self._row_pauli(i))
        return out

    def _row_pauli(self, row: int) -> Pauli:
        # Row phase r counts factors of -1; each Y site carries the i from
        # Y = iXZ, so the canonical X^x Z^z phase is 2r + (#Y) mod 4.
        y_count = int(np.sum(self.x[row] & self.z[row]))
        return Pauli(self.x[row], self.z[row], (2 * int(self.r[row]) + y_count) % 4)

    def pauli_expectation(self, pauli: Pauli) -> int | None:
        """<P> for a Pauli: +1 / -1 when deterministic, ``None`` if random.

        P has a definite value iff it (up to sign) is a product of
        stabilizer rows; the sign comes from exact Pauli multiplication.
        """
        if pauli.n != self.n:
            raise ValueError("Pauli size mismatch")
        # P = i^p X^x Z^z is Hermitian iff p ≡ x·z (mod 2); only Hermitian
        # operators have real expectation values.
        if (pauli.phase - int(np.sum(pauli.x & pauli.z))) % 2 != 0:
            raise ValueError(f"{pauli!r} is not Hermitian; expectation undefined")
        n = self.n
        # P commutes with every stabilizer iff expectation is deterministic.
        sx = self.x[n : 2 * n]
        sz = self.z[n : 2 * n]
        anti = ((sx @ pauli.z.astype(np.int64)) + (sz @ pauli.x.astype(np.int64))) % 2
        if np.any(anti):
            return None
        # Solve for the combination of stabilizer rows equal to P's (x|z).
        from repro.gf2 import gf2_solve

        mat = np.concatenate([sx, sz], axis=1).T  # (2n, n): columns are rows' symplectic vecs
        target = np.concatenate([pauli.x, pauli.z])
        combo = gf2_solve(mat, target)
        if combo is None:
            # Commutes with the group but not in it: expectation 0 is not
            # possible for stabilizer states unless P acts on the codespace
            # nontrivially; report None (indeterminate).
            return None
        prod = Pauli.identity(n)
        for i in np.nonzero(combo)[0]:
            prod = prod * self._row_pauli(n + int(i))
        if prod.equal_up_to_phase(pauli):
            diff = (pauli.phase - prod.phase) % 4
            if diff == 0:
                return 1
            if diff == 2:
                return -1
        raise AssertionError("inconsistent tableau phase bookkeeping")

    # -- circuit execution ---------------------------------------------------
    _GATE_DISPATCH = {
        "H": "h",
        "S": "s",
        "SDG": "sdg",
        "X": "x_gate",
        "Y": "y_gate",
        "Z": "z_gate",
        "CNOT": "cnot",
        "CZ": "cz",
        "SWAP": "swap",
        "RPRIME": "rprime",
        "I": None,
    }

    def run(
        self,
        circuit: Circuit,
        rng: int | np.random.Generator | None = None,
        forced_outcomes: dict[int, int] | None = None,
    ) -> dict[int, int]:
        """Execute a Clifford circuit; returns the classical record."""
        gen = as_rng(rng)
        record: dict[int, int] = {}
        forced = forced_outcomes or {}
        for op in circuit:
            if op.gate == "TICK":
                continue
            if op.condition:
                parity = 0
                for c in op.condition:
                    parity ^= record.get(c, 0)
                if parity == 0:
                    continue
            if op.gate == "M":
                record[op.cbits[0]] = self.measure(op.qubits[0], gen, force=forced.get(op.cbits[0]))
            elif op.gate == "MX":
                self.h(op.qubits[0])
                record[op.cbits[0]] = self.measure(op.qubits[0], gen, force=forced.get(op.cbits[0]))
                self.h(op.qubits[0])
            elif op.gate == "R":
                self.reset(op.qubits[0], gen)
            else:
                method = self._GATE_DISPATCH.get(op.gate, "missing")
                if method == "missing":
                    raise ValueError(f"gate {op.gate!r} is not Clifford-simulable here")
                if method is not None:
                    getattr(self, method)(*op.qubits)
        return record
