"""Pauli-operator algebra in the symplectic binary representation (§3.6).

An n-qubit Pauli is written P = i^phase · X^x · Z^z with x, z ∈ GF(2)^n;
commutation, multiplication, and weight are all binary linear algebra, which
is what makes stabilizer codes classically tractable.
"""

from repro.paulis.pauli import Pauli, pauli_from_string, symplectic_product

__all__ = ["Pauli", "pauli_from_string", "symplectic_product"]
