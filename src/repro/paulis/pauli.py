"""n-qubit Pauli operators as symplectic binary vectors.

Representation: P = (-i)^(x·z) · i^phase · prod_j X_j^{x_j} Z_j^{z_j}, where
``x`` and ``z`` are uint8 vectors and ``phase`` counts powers of i mod 4.
Under this convention the single-qubit letters are

    I = (x=0, z=0)   X = (1, 0)   Z = (0, 1)   Y = (1, 1) with phase 1,

i.e. Y = iXZ, matching Eq. (5) of the paper up to the standard Hermitian
phase (the paper uses Y ≡ X·Z; we track the i so products are exact).

Two Paulis commute iff their symplectic product x1·z2 + z1·x2 vanishes
mod 2 — the fact underlying stabilizer syndrome extraction (§3.6).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Pauli", "pauli_from_string", "symplectic_product"]

_LETTER_TO_XZ = {"I": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1)}
_XZ_TO_LETTER = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}
_PHASE_STR = {0: "+", 1: "+i", 2: "-", 3: "-i"}


def symplectic_product(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> int:
    """Symplectic inner product mod 2; zero iff the Paulis commute."""
    return int((np.sum(x1 & z2) + np.sum(z1 & x2)) % 2)


class Pauli:
    """Immutable n-qubit Pauli operator.

    Attributes
    ----------
    x, z:
        uint8 arrays of length n marking X- and Z-type support.
    phase:
        Power of i in front of the canonical X^x Z^z product, mod 4.
    """

    __slots__ = ("x", "z", "phase")

    def __init__(self, x: np.ndarray, z: np.ndarray, phase: int = 0) -> None:
        xa = np.asarray(x).astype(np.uint8).ravel() & 1
        za = np.asarray(z).astype(np.uint8).ravel() & 1
        if xa.shape != za.shape:
            raise ValueError("x and z must have equal length")
        object.__setattr__(self, "x", xa)
        object.__setattr__(self, "z", za)
        object.__setattr__(self, "phase", int(phase) % 4)

    def __setattr__(self, *_: object) -> None:  # pragma: no cover - guard
        raise AttributeError("Pauli is immutable")

    # Pickle support: the default slots-state restore goes through
    # __setattr__, which the immutability guard blocks — protocols carrying
    # Paulis must cross process boundaries for the sharded Monte Carlo
    # driver, so restore state with object.__setattr__ instead.
    def __getstate__(self) -> tuple[np.ndarray, np.ndarray, int]:
        return (self.x, self.z, self.phase)

    def __setstate__(self, state: tuple[np.ndarray, np.ndarray, int]) -> None:
        x, z, phase = state
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "z", z)
        object.__setattr__(self, "phase", phase)

    # -- constructors ---------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Pauli":
        return cls(np.zeros(n, dtype=np.uint8), np.zeros(n, dtype=np.uint8))

    @classmethod
    def single(cls, n: int, qubit: int, letter: str) -> "Pauli":
        """A single-qubit letter ('X','Y','Z','I') embedded in n qubits."""
        if letter not in _LETTER_TO_XZ:
            raise ValueError(f"unknown Pauli letter {letter!r}")
        x = np.zeros(n, dtype=np.uint8)
        z = np.zeros(n, dtype=np.uint8)
        xv, zv = _LETTER_TO_XZ[letter]
        x[qubit], z[qubit] = xv, zv
        phase = 1 if letter == "Y" else 0
        return cls(x, z, phase)

    # -- basic properties ------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.x.shape[0])

    def weight(self) -> int:
        """Number of qubits on which the operator is not the identity."""
        return int(np.sum(self.x | self.z))

    def is_identity(self) -> bool:
        return self.weight() == 0 and self.phase == 0

    def commutes_with(self, other: "Pauli") -> bool:
        self._check_compatible(other)
        return symplectic_product(self.x, self.z, other.x, other.z) == 0

    def _check_compatible(self, other: "Pauli") -> None:
        if self.n != other.n:
            raise ValueError(f"qubit count mismatch: {self.n} vs {other.n}")

    # -- algebra ----------------------------------------------------------
    def __mul__(self, other: "Pauli") -> "Pauli":
        """Exact operator product, tracking the i^phase bookkeeping.

        Using P = i^p X^x Z^z, moving other's X past self's Z contributes
        (-1)^(z1·x2) = i^(2 z1·x2).
        """
        self._check_compatible(other)
        phase = (self.phase + other.phase + 2 * int(np.sum(self.z & other.x))) % 4
        return Pauli(self.x ^ other.x, self.z ^ other.z, phase)

    def conjugate_phase(self) -> "Pauli":
        """Hermitian conjugate (Paulis are self-inverse up to phase)."""
        # (i^p X^x Z^z)^dagger = i^{-p} Z^z X^x = i^{-p} (-1)^{x.z} X^x Z^z
        phase = (-self.phase + 2 * int(np.sum(self.x & self.z))) % 4
        return Pauli(self.x, self.z, phase)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return (
            self.n == other.n
            and self.phase == other.phase
            and bool(np.all(self.x == other.x))
            and bool(np.all(self.z == other.z))
        )

    def equal_up_to_phase(self, other: "Pauli") -> bool:
        self._check_compatible(other)
        return bool(np.all(self.x == other.x) and np.all(self.z == other.z))

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    # -- rendering ----------------------------------------------------------
    def letters(self) -> str:
        return "".join(_XZ_TO_LETTER[(int(a), int(b))] for a, b in zip(self.x, self.z))

    def __repr__(self) -> str:
        # Fold the XZ->Y phase back in for display: each Y site carries i.
        y_count = int(np.sum(self.x & self.z))
        display_phase = (self.phase - y_count) % 4
        return f"{_PHASE_STR[display_phase]}{self.letters()}"

    # -- dense matrix (for validation against the statevector simulator) ----
    def to_matrix(self) -> np.ndarray:
        """Dense 2^n x 2^n complex matrix.  Only for small n."""
        if self.n > 12:
            raise ValueError("refusing to build a dense matrix for n > 12")
        eye = np.eye(2, dtype=complex)
        mx = np.array([[0, 1], [1, 0]], dtype=complex)
        mz = np.array([[1, 0], [0, -1]], dtype=complex)
        out = np.array([[1]], dtype=complex)
        for xi, zi in zip(self.x, self.z):
            local = eye
            if xi and zi:
                local = mx @ mz
            elif xi:
                local = mx
            elif zi:
                local = mz
            out = np.kron(out, local)
        return (1j**self.phase) * out


def pauli_from_string(spec: str) -> Pauli:
    """Parse strings like ``"XIZZY"`` or ``"-iXYZ"`` into a :class:`Pauli`.

    The optional prefix is one of ``+ - +i -i i``; the remainder must be
    letters from {I, X, Y, Z} (case-insensitive).
    """
    s = spec.strip()
    phase = 0
    for prefix, ph in (("-i", 3), ("+i", 1), ("i", 1), ("-", 2), ("+", 0)):
        if s.startswith(prefix):
            phase = ph
            s = s[len(prefix) :]
            break
    s = s.upper()
    if not s or any(c not in _LETTER_TO_XZ for c in s):
        raise ValueError(f"invalid Pauli string {spec!r}")
    # Single-qubit factors act on disjoint qubits, so the product needs no
    # commutation bookkeeping: x/z support comes straight from the letters
    # and each Y contributes one factor of i (Y = iXZ).
    letters = np.frombuffer(s.encode("ascii"), dtype=np.uint8)
    x = ((letters == ord("X")) | (letters == ord("Y"))).astype(np.uint8)
    z = ((letters == ord("Z")) | (letters == ord("Y"))).astype(np.uint8)
    y_count = int(np.sum(x & z))
    return Pauli(x, z, (phase + y_count) % 4)
