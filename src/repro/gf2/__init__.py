"""Linear algebra over GF(2).

The classical Hamming code, CSS code construction, stabilizer bookkeeping,
and toric-code homology all reduce to binary linear algebra; this subpackage
provides the shared primitives.
"""

from repro.gf2.linalg import (
    gf2_inverse,
    gf2_kernel,
    gf2_matmul,
    gf2_rank,
    gf2_row_reduce,
    gf2_row_space,
    gf2_solve,
    in_row_space,
)

__all__ = [
    "gf2_inverse",
    "gf2_kernel",
    "gf2_matmul",
    "gf2_rank",
    "gf2_row_reduce",
    "gf2_row_space",
    "gf2_solve",
    "in_row_space",
]
