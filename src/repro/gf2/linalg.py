"""Dense GF(2) linear algebra on uint8 NumPy arrays.

All routines treat matrices as arrays of 0/1 entries with arithmetic mod 2.
Inputs are normalized with ``np.asarray(..) & 1`` so callers may pass bools,
ints, or anything array-like.  Row reduction is the single workhorse; rank,
kernels, solving, and membership tests are thin wrappers over it.

The matrices in this project are small (tens to a few thousand columns), so
a dense uint8 representation with vectorized row XOR is both the simplest
and, per the profiling guidance in the HPC notes, comfortably fast: the
inner loop XORs whole rows at once rather than iterating entries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_row_reduce",
    "gf2_rank",
    "gf2_kernel",
    "gf2_solve",
    "gf2_matmul",
    "gf2_row_space",
    "in_row_space",
]


def _as_gf2(a: np.ndarray) -> np.ndarray:
    arr = np.asarray(a)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    return (arr.astype(np.uint8)) & 1


def gf2_row_reduce(a: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form over GF(2).

    Returns ``(rref, pivot_columns)`` where ``rref`` is a fresh array and
    ``pivot_columns`` lists, in order, the column index of each pivot.
    """
    m = _as_gf2(a).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        # Find a pivot row at or below r in column c.
        nz = np.nonzero(m[r:, c])[0]
        if nz.size == 0:
            continue
        p = r + int(nz[0])
        if p != r:
            m[[r, p]] = m[[p, r]]
        # Eliminate column c from every other row that has a 1 there.
        elim = np.nonzero(m[:, c])[0]
        elim = elim[elim != r]
        if elim.size:
            m[elim] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(a: np.ndarray) -> int:
    """Rank of ``a`` over GF(2)."""
    _, pivots = gf2_row_reduce(a)
    return len(pivots)


def gf2_row_space(a: np.ndarray) -> np.ndarray:
    """A basis (as rows, in RREF) for the row space of ``a``."""
    rref, pivots = gf2_row_reduce(a)
    return rref[: len(pivots)]


def gf2_kernel(a: np.ndarray) -> np.ndarray:
    """Basis for the right null space: rows ``v`` with ``a @ v = 0 (mod 2)``.

    Returns an array of shape ``(nullity, cols)``; empty (0, cols) when the
    map is injective.
    """
    m = _as_gf2(a)
    rows, cols = m.shape
    rref, pivots = gf2_row_reduce(m)
    free = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free), cols), dtype=np.uint8)
    for i, fc in enumerate(free):
        basis[i, fc] = 1
        # Back-substitute: pivot row r has its pivot at pivots[r].
        for r, pc in enumerate(pivots):
            if rref[r, fc]:
                basis[i, pc] = 1
    return basis


def gf2_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Solve ``a @ x = b (mod 2)`` for one particular solution.

    Returns a length-``cols`` uint8 vector, or ``None`` when inconsistent.
    """
    m = _as_gf2(a)
    rhs = np.asarray(b).astype(np.uint8).ravel() & 1
    rows, cols = m.shape
    if rhs.shape[0] != rows:
        raise ValueError(f"dimension mismatch: {rows} rows vs b of length {rhs.shape[0]}")
    aug = np.concatenate([m, rhs[:, np.newaxis]], axis=1)
    rref, pivots = gf2_row_reduce(aug)
    # Inconsistent iff some pivot lands in the augmented column.
    if cols in pivots:
        return None
    x = np.zeros(cols, dtype=np.uint8)
    for r, pc in enumerate(pivots):
        x[pc] = rref[r, cols]
    return x


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product mod 2.  Accepts vectors for either argument.

    Runs through the float64 BLAS matmul: 0/1 dot products are exact in
    float64 up to 2^53 summands (far beyond any shot count here) and BLAS
    is an order of magnitude faster than NumPy's integer matmul loop at
    Monte-Carlo batch sizes — this sits on the syndrome-decode hot path.
    """
    aa = np.asarray(a).astype(np.uint8) & 1
    bb = np.asarray(b).astype(np.uint8) & 1
    prod = aa.astype(np.float64) @ bb.astype(np.float64)
    return (np.rint(prod).astype(np.int64) & 1).astype(np.uint8)


def gf2_inverse(a: np.ndarray) -> np.ndarray:
    """Inverse of a square GF(2) matrix (raises if singular)."""
    m = _as_gf2(a)
    k = m.shape[0]
    if m.shape[1] != k:
        raise ValueError("matrix must be square")
    aug = np.concatenate([m, np.eye(k, dtype=np.uint8)], axis=1)
    rref, pivots = gf2_row_reduce(aug)
    if pivots[:k] != list(range(k)):
        raise ValueError("matrix is singular over GF(2)")
    return rref[:k, k:]


def in_row_space(a: np.ndarray, v: np.ndarray) -> bool:
    """Whether vector ``v`` is a GF(2) combination of the rows of ``a``."""
    m = _as_gf2(a)
    vv = np.asarray(v).astype(np.uint8).ravel() & 1
    base = gf2_rank(m)
    return gf2_rank(np.vstack([m, vv])) == base
