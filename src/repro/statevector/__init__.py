"""Exact dense statevector simulation (small systems).

Used to validate the library against the paper's algebra: the encoder of
Fig. 3 must produce exactly Eq. (6)/(7), transversal Hadamards must realize
Eq. (11), the Toffoli gadget of Fig. 13 must implement |x,y,z> -> |x,y,z⊕xy>,
and coherent-error accumulation (§6, random vs systematic) needs amplitudes,
not just Pauli frames.
"""

from repro.statevector.simulator import StateVector, run_circuit

__all__ = ["StateVector", "run_circuit"]
