"""Dense simulator over (2,)*n tensors.

Gate application follows the standard tensordot/moveaxis contraction (no
per-amplitude Python loops); memory is the only limit (~20 qubits).  The
simulator executes the shared :class:`repro.circuits.Circuit` IR including
parity-conditioned operations, so fault-tolerant gadgets can be checked
exactly against their intended logical action.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import gate_matrix
from repro.util.rng import as_rng

__all__ = ["StateVector", "run_circuit"]

_H = gate_matrix("H")


class StateVector:
    """Mutable n-qubit pure state.

    Qubit 0 is the most significant bit of the computational index, so
    ``state.amplitudes()[0b101]`` is the amplitude of |101> with qubit 0 in
    state |1> — matching the left-to-right ket notation of the paper.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if num_qubits > 20:
            raise ValueError("dense simulation beyond 20 qubits is not supported")
        self.num_qubits = num_qubits
        self._state = np.zeros((2,) * num_qubits, dtype=complex)
        self._state[(0,) * num_qubits] = 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_amplitudes(cls, amps: np.ndarray) -> "StateVector":
        arr = np.asarray(amps, dtype=complex).ravel()
        n = int(np.log2(arr.size))
        if 2**n != arr.size:
            raise ValueError("amplitude vector length must be a power of two")
        sv = cls(n)
        norm = np.linalg.norm(arr)
        if norm == 0:
            raise ValueError("zero vector is not a state")
        sv._state = (arr / norm).reshape((2,) * n)
        return sv

    def amplitudes(self) -> np.ndarray:
        """Flat copy of the 2^n amplitude vector."""
        return self._state.reshape(-1).copy()

    def copy(self) -> "StateVector":
        sv = StateVector(self.num_qubits)
        sv._state = self._state.copy()
        return sv

    def norm(self) -> float:
        return float(np.linalg.norm(self._state))

    # ------------------------------------------------------------------
    def apply_unitary(self, u: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply a 2^k x 2^k unitary to the named qubits (in order)."""
        k = len(qubits)
        if u.shape != (2**k, 2**k):
            raise ValueError(f"unitary shape {u.shape} does not match {k} qubits")
        tensor = u.reshape((2,) * (2 * k))
        moved = np.tensordot(tensor, self._state, axes=(tuple(range(k, 2 * k)), qubits))
        self._state = np.moveaxis(moved, tuple(range(k)), qubits)

    def apply_gate(self, name: str, *qubits: int) -> None:
        self.apply_unitary(gate_matrix(name), tuple(qubits))

    # ------------------------------------------------------------------
    def probability_of_zero(self, qubit: int) -> float:
        """P(measuring |0>) on ``qubit``."""
        amps = np.moveaxis(self._state, qubit, 0)
        return float(np.sum(np.abs(amps[0]) ** 2))

    def measure(
        self,
        qubit: int,
        rng: np.random.Generator | None = None,
        force: int | None = None,
    ) -> int:
        """Projective Z measurement; collapses the state in place.

        ``force`` postselects the given outcome (raising when its
        probability is negligible) — used by deterministic gadget tests.
        """
        p0 = self.probability_of_zero(qubit)
        if force is not None:
            outcome = int(force)
            prob = p0 if outcome == 0 else 1.0 - p0
            if prob < 1e-12:
                raise ValueError(f"forced outcome {outcome} has probability ~0")
        else:
            gen = as_rng(rng)
            outcome = int(gen.random() >= p0)
            prob = p0 if outcome == 0 else 1.0 - p0
        amps = np.moveaxis(self._state, qubit, 0)
        amps[1 - outcome] = 0.0
        self._state /= np.sqrt(prob)
        return outcome

    def reset(self, qubit: int, rng: np.random.Generator | None = None) -> None:
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            self.apply_gate("X", qubit)

    # ------------------------------------------------------------------
    def fidelity(self, other: "StateVector | np.ndarray") -> float:
        """|<self|other>|^2 — Eq. (14)'s pure-state fidelity."""
        if isinstance(other, StateVector):
            vec = other.amplitudes()
        else:
            vec = np.asarray(other, dtype=complex).ravel()
        mine = self.amplitudes()
        if vec.size != mine.size:
            raise ValueError("dimension mismatch in fidelity")
        return float(np.abs(np.vdot(mine, vec)) ** 2)

    def expectation_pauli(self, pauli: "np.ndarray | object") -> float:
        """<psi| P |psi> for a repro.paulis.Pauli or dense matrix."""
        mat = pauli.to_matrix() if hasattr(pauli, "to_matrix") else np.asarray(pauli)
        vec = self.amplitudes()
        return float(np.real(np.vdot(vec, mat @ vec)))


def run_circuit(
    circuit: Circuit,
    state: StateVector | None = None,
    rng: int | np.random.Generator | None = None,
    forced_outcomes: dict[int, int] | None = None,
) -> tuple[StateVector, dict[int, int]]:
    """Execute a circuit; returns the final state and the classical record.

    Parameters
    ----------
    forced_outcomes:
        Map cbit -> outcome to postselect specific measurement results
        (deterministic verification of measurement-based gadgets).
    """
    gen = as_rng(rng)
    sv = state if state is not None else StateVector(circuit.num_qubits)
    if sv.num_qubits != circuit.num_qubits:
        raise ValueError("state size does not match circuit")
    record: dict[int, int] = {}
    forced = forced_outcomes or {}
    for op in circuit:
        if op.gate == "TICK":
            continue
        if op.condition and _parity(record, op.condition) == 0:
            continue
        _execute(sv, op, gen, record, forced)
    return sv, record


def _parity(record: dict[int, int], cbits: tuple[int, ...]) -> int:
    total = 0
    for c in cbits:
        total ^= record.get(c, 0)
    return total


def _execute(
    sv: StateVector,
    op: Operation,
    gen: np.random.Generator,
    record: dict[int, int],
    forced: dict[int, int],
) -> None:
    if op.gate == "M":
        cbit = op.cbits[0]
        record[cbit] = sv.measure(op.qubits[0], gen, force=forced.get(cbit))
    elif op.gate == "MX":
        cbit = op.cbits[0]
        sv.apply_unitary(_H, (op.qubits[0],))
        record[cbit] = sv.measure(op.qubits[0], gen, force=forced.get(cbit))
        sv.apply_unitary(_H, (op.qubits[0],))
    elif op.gate == "R":
        sv.reset(op.qubits[0], gen)
    else:
        sv.apply_gate(op.gate, *op.qubits)
