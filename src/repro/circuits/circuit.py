"""Circuit container: a flat, append-only list of operations.

Classical control is expressed through ``condition``: an operation carrying
a nonempty condition tuple executes only when the XOR (parity) of the named
classical bits is 1.  That is exactly the control structure of the paper's
fault-tolerant gadgets — e.g. Fig. 13's "the arrow points to the set of
gates that is to be applied if the measurement outcome is 1", and the
parity-of-four-ancilla-bits readout of the Shor-state method (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.gates import GATES

__all__ = ["Operation", "Circuit"]


@dataclass(frozen=True)
class Operation:
    """One gate/measurement/reset application.

    Attributes
    ----------
    gate: name registered in :data:`repro.circuits.gates.GATES`.
    qubits: target qubit indices (control first for controlled gates,
        matching Fig. 1's source/target convention).
    cbits: classical bits written (measurements) — one per measured qubit.
    condition: classical bits whose parity gates execution.
    tag: free-form label used by noise models and resource analysis to
        distinguish locations (e.g. "anc_prep", "verify", "data").
    """

    gate: str
    qubits: tuple[int, ...]
    cbits: tuple[int, ...] = ()
    condition: tuple[int, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        spec = GATES.get(self.gate)
        if spec is None:
            raise ValueError(f"unknown gate {self.gate!r}")
        if spec.num_qubits and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"{self.gate} acts on {spec.num_qubits} qubit(s), got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubit in {self.gate} on {self.qubits}")
        if self.gate in ("M", "MX") and len(self.cbits) != 1:
            raise ValueError("measurements must write exactly one classical bit")


@dataclass
class Circuit:
    """An ordered program over ``num_qubits`` qubits and ``num_cbits`` bits.

    The container is deliberately minimal: composition, qubit remapping, and
    the builder-style ``append`` helpers below.  Simulation semantics live in
    the simulator packages.
    """

    num_qubits: int
    num_cbits: int = 0
    operations: list[Operation] = field(default_factory=list)
    name: str = ""

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise IndexError(f"qubit {q} out of range [0, {self.num_qubits})")

    def _check_cbits(self, cbits: Iterable[int]) -> None:
        for c in cbits:
            if not 0 <= c < self.num_cbits:
                raise IndexError(f"classical bit {c} out of range [0, {self.num_cbits})")

    def append(
        self,
        gate: str,
        *qubits: int,
        cbits: tuple[int, ...] = (),
        condition: tuple[int, ...] = (),
        tag: str = "",
    ) -> "Circuit":
        """Append an operation; returns self for chaining."""
        op = Operation(gate, tuple(qubits), tuple(cbits), tuple(condition), tag)
        self._check_qubits(op.qubits)
        self._check_cbits(op.cbits)
        self._check_cbits(op.condition)
        self.operations.append(op)
        return self

    # Convenience wrappers keep gadget-construction code readable.
    def h(self, q: int, **kw: object) -> "Circuit":
        return self.append("H", q, **kw)  # type: ignore[arg-type]

    def x(self, q: int, **kw: object) -> "Circuit":
        return self.append("X", q, **kw)  # type: ignore[arg-type]

    def y(self, q: int, **kw: object) -> "Circuit":
        return self.append("Y", q, **kw)  # type: ignore[arg-type]

    def z(self, q: int, **kw: object) -> "Circuit":
        return self.append("Z", q, **kw)  # type: ignore[arg-type]

    def s(self, q: int, **kw: object) -> "Circuit":
        return self.append("S", q, **kw)  # type: ignore[arg-type]

    def sdg(self, q: int, **kw: object) -> "Circuit":
        return self.append("SDG", q, **kw)  # type: ignore[arg-type]

    def cnot(self, control: int, target: int, **kw: object) -> "Circuit":
        return self.append("CNOT", control, target, **kw)  # type: ignore[arg-type]

    def cz(self, a: int, b: int, **kw: object) -> "Circuit":
        return self.append("CZ", a, b, **kw)  # type: ignore[arg-type]

    def ccx(self, c1: int, c2: int, target: int, **kw: object) -> "Circuit":
        return self.append("CCX", c1, c2, target, **kw)  # type: ignore[arg-type]

    def measure(self, q: int, cbit: int, **kw: object) -> "Circuit":
        return self.append("M", q, cbits=(cbit,), **kw)  # type: ignore[arg-type]

    def measure_x(self, q: int, cbit: int, **kw: object) -> "Circuit":
        return self.append("MX", q, cbits=(cbit,), **kw)  # type: ignore[arg-type]

    def reset(self, q: int, **kw: object) -> "Circuit":
        return self.append("R", q, **kw)  # type: ignore[arg-type]

    def tick(self) -> "Circuit":
        self.operations.append(Operation("TICK", ()))
        return self

    # ------------------------------------------------------------------
    def compose(self, other: "Circuit") -> "Circuit":
        """Append ``other``'s operations (indices must already align)."""
        if other.num_qubits > self.num_qubits or other.num_cbits > self.num_cbits:
            raise ValueError("composed circuit exceeds this circuit's registers")
        self.operations.extend(other.operations)
        return self

    def remapped(
        self,
        qubit_map: dict[int, int],
        cbit_map: dict[int, int] | None = None,
        num_qubits: int | None = None,
        num_cbits: int | None = None,
    ) -> "Circuit":
        """A copy with qubit (and classical bit) indices relabeled.

        Used to embed a gadget built on local indices into a larger
        register, e.g. placing the 7-qubit encoder on block 2 of 3.
        """
        cmap = cbit_map or {}
        nq = num_qubits if num_qubits is not None else self.num_qubits
        nc = num_cbits if num_cbits is not None else self.num_cbits
        out = Circuit(nq, nc, name=self.name)
        for op in self.operations:
            out.append(
                op.gate,
                *[qubit_map.get(q, q) for q in op.qubits],
                cbits=tuple(cmap.get(c, c) for c in op.cbits),
                condition=tuple(cmap.get(c, c) for c in op.condition),
                tag=op.tag,
            )
        return out

    def copy(self) -> "Circuit":
        out = Circuit(self.num_qubits, self.num_cbits, name=self.name)
        out.operations = list(self.operations)
        return out

    def measured_cbits(self) -> list[int]:
        return [op.cbits[0] for op in self.operations if op.gate in ("M", "MX")]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name or 'unnamed'}, qubits={self.num_qubits}, "
            f"cbits={self.num_cbits}, ops={len(self.operations)})"
        )
