"""Static circuit resource analysis.

Experiment E05 compares the Shor and Steane extraction methods by their
stated costs — "24 ancilla bits and 24 XOR gates" vs "14 ancilla bits and 14
XOR gates" (§3.3) — so the library must be able to count resources from the
constructed circuits rather than quoting the paper.
"""

from __future__ import annotations

from collections import Counter

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GATES

__all__ = ["gate_counts", "circuit_depth", "resource_summary", "count_error_locations"]


def gate_counts(circuit: Circuit) -> dict[str, int]:
    """Histogram of gate names (TICKs excluded)."""
    counts: Counter[str] = Counter()
    for op in circuit:
        if op.gate != "TICK":
            counts[op.gate] += 1
    return dict(counts)


def circuit_depth(circuit: Circuit) -> int:
    """Greedy as-soon-as-possible depth over qubit conflicts.

    Measurement/reset count as depth-1 operations; TICKs force a global
    layer boundary (they model a storage time step).
    """
    frontier: dict[int, int] = {}
    depth = 0
    floor = 0
    for op in circuit:
        if op.gate == "TICK":
            floor = depth
            continue
        start = floor
        for q in op.qubits:
            start = max(start, frontier.get(q, 0))
        layer = start + 1
        for q in op.qubits:
            frontier[q] = layer
        depth = max(depth, layer)
    return depth


def count_error_locations(circuit: Circuit) -> dict[str, int]:
    """Count fault locations in the §5/§6 sense.

    Every gate application is one location; a TICK adds one storage location
    per qubit.  Measurements and resets are locations too (the paper's
    threshold counting includes faulty measurement and preparation).
    """
    locations = {"gate": 0, "two_qubit": 0, "measure": 0, "prepare": 0, "storage": 0}
    for op in circuit:
        if op.gate == "TICK":
            locations["storage"] += circuit.num_qubits
        elif op.gate in ("M", "MX"):
            locations["measure"] += 1
        elif op.gate == "R":
            locations["prepare"] += 1
        else:
            locations["gate"] += 1
            if len(op.qubits) >= 2:
                locations["two_qubit"] += 1
    return locations


def resource_summary(circuit: Circuit) -> dict[str, object]:
    """One-stop summary used by benches and EXPERIMENTS.md tables."""
    counts = gate_counts(circuit)
    touched = {q for op in circuit for q in op.qubits}
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "qubits_touched": len(touched),
        "depth": circuit_depth(circuit),
        "gate_counts": counts,
        "cnot_count": counts.get("CNOT", 0),
        "measurement_count": counts.get("M", 0) + counts.get("MX", 0),
        "total_operations": sum(counts.values()),
        "error_locations": count_error_locations(circuit),
    }
