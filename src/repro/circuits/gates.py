"""The gate vocabulary (paper Fig. 1 plus the standard Clifford set).

The paper's circuits use NOT, XOR (controlled-NOT), Toffoli
(controlled-controlled-NOT), the Hadamard rotation R (Eq. 9), the phase gate
P (Eq. 22), and single-qubit measurements/preparations.  We register each
gate's arity and unitary matrix once; simulators dispatch on the name.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GateSpec", "GATES", "is_clifford", "gate_matrix"]

_SQ2 = 1.0 / np.sqrt(2.0)


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name: canonical upper-case mnemonic.
    num_qubits: arity (0 for pseudo-ops like TICK).
    clifford: whether the gate normalizes the Pauli group (propagates
        Pauli frames linearly; non-Clifford gates are handled specially).
    unitary: dense matrix for the statevector simulator, or ``None`` for
        non-unitary ops (measure/reset) and pseudo-ops.
    """

    name: str
    num_qubits: int
    clifford: bool
    unitary: np.ndarray | None


def _u(mat: list[list[complex]]) -> np.ndarray:
    return np.array(mat, dtype=complex)


_H = _u([[_SQ2, _SQ2], [_SQ2, -_SQ2]])
_X = _u([[0, 1], [1, 0]])
_Y = _u([[0, -1j], [1j, 0]])
_Z = _u([[1, 0], [0, -1]])
_S = _u([[1, 0], [0, 1j]])
_SDG = _u([[1, 0], [0, -1j]])
# R' of Eq. (20): rotates Y-type checks into Z-type for syndrome readout.
_RPRIME = _SQ2 * _u([[1, 1j], [1j, 1]])
_T = _u([[1, 0], [0, np.exp(1j * np.pi / 4)]])

_CNOT = np.eye(4, dtype=complex)[[0, 1, 3, 2]]
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.eye(4, dtype=complex)[[0, 2, 1, 3]]
_CCX = np.eye(8, dtype=complex)[[0, 1, 2, 3, 4, 5, 7, 6]]
_CCZ = np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex)
_CY = np.eye(4, dtype=complex)
_CY[2:, 2:] = _Y

GATES: dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        GateSpec("I", 1, True, np.eye(2, dtype=complex)),
        GateSpec("X", 1, True, _X),
        GateSpec("Y", 1, True, _Y),
        GateSpec("Z", 1, True, _Z),
        GateSpec("H", 1, True, _H),
        GateSpec("S", 1, True, _S),
        GateSpec("SDG", 1, True, _SDG),
        GateSpec("RPRIME", 1, True, _RPRIME),
        GateSpec("T", 1, False, _T),
        GateSpec("CNOT", 2, True, _CNOT),
        GateSpec("CZ", 2, True, _CZ),
        GateSpec("CY", 2, True, _CY),
        GateSpec("SWAP", 2, True, _SWAP),
        GateSpec("CCX", 3, False, _CCX),
        GateSpec("CCZ", 3, False, _CCZ),
        # Non-unitary / pseudo operations.
        GateSpec("M", 1, True, None),      # destructive Z-basis measurement
        GateSpec("MX", 1, True, None),     # X-basis measurement
        GateSpec("R", 1, True, None),      # reset to |0>
        GateSpec("TICK", 0, True, None),   # time-step barrier (storage noise)
    ]
}


def is_clifford(name: str) -> bool:
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    return spec.clifford


def gate_matrix(name: str) -> np.ndarray:
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    if spec.unitary is None:
        raise ValueError(f"gate {name!r} has no unitary matrix")
    return spec.unitary
