"""Quantum circuit intermediate representation.

Circuits are flat sequences of typed operations over integer qubit and
classical-bit indices.  The same IR drives the dense statevector simulator
(exact validation), the stabilizer tableau (Clifford-scale checks), and the
vectorized Pauli-frame Monte Carlo engine (threshold estimation), so every
fault-tolerant gadget in `repro.ft` is built once and executed everywhere.
"""

from repro.circuits.gates import GATES, GateSpec, is_clifford
from repro.circuits.circuit import Circuit, Operation
from repro.circuits.analysis import circuit_depth, gate_counts, resource_summary

__all__ = [
    "GATES",
    "GateSpec",
    "is_clifford",
    "Circuit",
    "Operation",
    "circuit_depth",
    "gate_counts",
    "resource_summary",
]
