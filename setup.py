"""Legacy setup shim: the environment's setuptools predates PEP 660
editable wheels, so `pip install -e .` needs a setup.py entry point.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
