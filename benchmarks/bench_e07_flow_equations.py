"""E07 — the concatenation flow p' = 21 p² and its 1/21 fixed point."""

from repro.experiments.e07_flow_equations import run


def test_e07_flow_equations(run_once):
    result = run_once(run, quick=True)
    assert result["map_below_threshold_converges"]
    assert result["map_above_threshold_diverges"]
    # Combinatorial MC reproduces a quadratic law with coefficient near 21
    # (finite-p corrections pull it below the asymptotic value).
    assert 1.5 < result["mc_exponent"] < 2.5
    assert 4 < result["mc_coefficient"] < 40
    # Circuit-level coefficient is much larger (many fault locations).
    assert result["circuit_level_coefficient"] > 100
    assert 1.5 < result["circuit_level_exponent"] < 2.5
