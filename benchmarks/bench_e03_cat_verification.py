"""E03 — cat-state verification suppresses correlated double errors."""

from repro.experiments.e03_cat_verification import run


def test_e03_cat_verification(run_once):
    result = run_once(run, quick=True)
    assert result["verified_better_everywhere"]
    # Acceptance stays high in the useful regime.
    assert result["rows"][0]["acceptance"] > 0.9
    # Suppression strengthens as eps falls (O(eps) -> O(eps^2)).
    assert result["rows"][0]["suppression"] >= 1.0
