"""E05 — Shor 24+24 vs Steane 14+14 extraction cost (§3.2–3.3)."""

from repro.experiments.e05_shor_vs_steane_cost import run


def test_e05_shor_vs_steane_cost(run_once):
    result = run_once(run, quick=True)
    # The paper's counts must be reproduced *exactly* by the circuits.
    assert result["measured_shor_ancillas"] == result["paper_shor_ancillas"] == 24
    assert result["measured_shor_xors"] == result["paper_shor_xors"] == 24
    assert result["measured_steane_ancillas"] == result["paper_steane_ancillas"] == 14
    assert result["measured_steane_xors"] == result["paper_steane_xors"] == 14
    # Both protocols operate in the same noise regime without blowing up.
    assert result["shor_logical_failure"] < 0.05
    assert result["steane_logical_failure"] < 0.05
