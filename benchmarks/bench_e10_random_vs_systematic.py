"""E10 — random (∝N) vs systematic (∝N²) error accumulation (§6)."""

from repro.experiments.e10_random_vs_systematic import run


def test_e10_random_vs_systematic(run_once):
    result = run_once(run, quick=True)
    assert abs(result["measured_systematic_exponent"] - 2.0) < 0.15
    assert abs(result["measured_random_exponent"] - 1.0) < 0.15
    # Dense simulation agrees with the closed forms.
    for row in result["rows"]:
        assert abs(row["systematic_dense"] - row["systematic_analytic"]) < 1e-6
        assert abs(row["random_dense"] - row["random_analytic"]) < 0.35 * row["random_analytic"] + 1e-6
