"""E06 — Eqs. 30–32: block error, optimal t, required accuracy."""

from repro.experiments.e06_code_family_scaling import run


def test_e06_code_family_scaling(run_once):
    result = run_once(run, quick=True)
    assert result["formula_tracks_bruteforce"]
    # eps ~ (log T)^-4: doubling log T divides the requirement by 16.
    assert abs(result["measured_shape_ratio"] - result["paper_shape_ratio_logT_doubling"]) < 0.01
    # Better hardware -> larger optimal t and smaller minimum error.
    rows = result["optimum_rows"]
    assert rows[0]["best_t_bruteforce"] < rows[-1]["best_t_bruteforce"]
    assert rows[0]["min_block_error_bruteforce"] > rows[-1]["min_block_error_bruteforce"]
