"""E09 — the §6 factoring table: 2160 logical qubits, 3e9 Toffolis,
3 levels / block 343 / ~1e6 physical qubits."""

from repro.experiments.e09_factoring_resources import run


def test_e09_factoring_resources(run_once):
    result = run_once(run, quick=True)
    assert result["measured_logical_qubits"] == 2160
    assert 2.9e9 < result["measured_toffoli_gates"] < 3.2e9
    # With the paper's (Shor-method) flow constants: L = 3, block 343.
    assert result["planned_levels_paper_constants"] == 3
    assert result["planned_block_paper_constants"] == 343
    assert 5e5 < result["planned_total_qubits_paper_constants"] < 2e6
    # Our Steane-method constants do at least as well (fewer levels).
    assert result["planned_levels_our_constants"] <= 3
    # Block-55 alternative recorded for the comparison table.
    assert result["block55_alternative"]["total_qubits"] == 4e5
