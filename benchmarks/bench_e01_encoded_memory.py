"""E01 — encoded memory F = 1 − O(ε²) vs bare 1 − ε (Eq. 14)."""

from repro.experiments.e01_encoded_memory import run


def test_e01_encoded_memory(run_once):
    result = run_once(run, quick=True)
    assert 1.6 < result["measured_exponent"] < 2.4
    assert result["encoding_helps_everywhere"]
    # Quadratic gain grows as eps falls.
    gains = [r["gain"] for r in result["rows"]]
    assert gains[0] > gains[-1]
