"""E13 — A₅ anyonic logic: Eq. 40/41, Fig. 21 NOT, interferometry,
nonsolvability criterion."""

from repro.experiments.e13_anyonic_logic import run


def test_e13_anyonic_logic(run_once):
    result = run_once(run, quick=True)
    assert result["not_gate_algebraic"]
    assert result["not_gate_compiled_depth"] == 1
    assert result["not_gate_catalytic"]
    assert result["a5_only_nonsolvable_leq_60"]
    # Fault-tolerant measurement: majority error falls with probe count.
    curve = result["interferometer_curve"]
    assert curve[-1]["majority_error"] < curve[0]["majority_error"] / 10
    assert result["charge_measurement"]["plus_state_always_plus"]
