"""E02 — Fig. 2's shared-ancilla circuit vs Fig. 6's Shor-state circuit."""

from repro.experiments.e02_bad_vs_good_ancilla import run


def test_e02_bad_vs_good_ancilla(run_once):
    result = run_once(run, quick=True)
    # Bad circuit fails at order eps, good at order eps^2.
    assert result["measured_bad_order"] < 1.5
    assert result["measured_good_order"] > 1.5
    assert result["separation_at_1e3"] > 2
    for row in result["rows"]:
        assert row["good_logical_z"] <= row["bad_logical_z"]
