"""E04 — §3.4: trust only a repeated nontrivial syndrome."""

from repro.experiments.e04_syndrome_repetition import run


def test_e04_syndrome_repetition(run_once):
    result = run_once(run, quick=True)
    assert result["repetition_helps"]
    # The single-reading policy pays an order-eps penalty: at the lower
    # physical rate the improvement factor must be substantial.
    assert result["rows"][0]["improvement"] > 2
