"""P01 — compiled bit-packed frame engine vs legacy interpreter.

The repo's first perf benchmark (see PERF.md): times both engines on the
same E01-style Steane memory experiment and asserts the speedup floor plus
statistical agreement of the two failure estimates.  CI-sized here; the
recorded trajectory datapoint in ``BENCH_pauliframe.json`` comes from the
full-size ``scripts/bench_perf.py`` run.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_perf import run_benchmark  # noqa: E402

from repro.util.stats import wilson_interval  # noqa: E402


def test_p01_frame_engine_speedup(run_once):
    record = run_once(run_benchmark, shots=4_000, rounds=5, eps=1e-3, seed=7)
    # Overhead eats into the win at CI sizes; the full-size run clears 10x
    # with margin, so anything under 3x here means the packed path broke.
    assert record["speedup"] > 3.0
    # Both engines estimate the same physics: overlapping Wilson intervals.
    shots = record["config"]["shots"]
    lo1, hi1 = wilson_interval(record["legacy"]["failures"], shots)
    lo2, hi2 = wilson_interval(record["compiled"]["failures"], shots)
    assert max(lo1, lo2) <= min(hi1, hi2)
