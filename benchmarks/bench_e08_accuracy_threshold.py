"""E08 — the accuracy threshold: counting + Monte Carlo vs the paper's
6e-4 crude / >1e-4 conservative estimates."""

from repro.experiments.e08_accuracy_threshold import run


def test_e08_accuracy_threshold(run_once):
    result = run_once(run, quick=True)
    # The fault-tolerance certificate: zero single-fault logical failures.
    assert result["counting_single_fault_logical_failures"] == 0
    # Both estimates bracket the paper's number within its stated band.
    assert result["both_in_band"]
    assert 1e-4 < result["counting_threshold"] < 3e-3
    assert 1e-5 < result["mc_pseudothreshold"] < 3e-3
