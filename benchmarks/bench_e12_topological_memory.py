"""E12 — topological memory: e^{−mL}, e^{−Δ/T}, toric-code threshold."""

from repro.experiments.e12_topological_memory import run


def test_e12_topological_memory(run_once):
    result = run_once(run, quick=True)
    assert abs(result["measured_tunneling_slope"] - result["paper_tunneling_slope"]) < 0.01
    assert abs(result["measured_boltzmann_slope"] - result["paper_boltzmann_slope"]) < 0.01
    assert result["bigger_lattice_better_below_threshold"]
    assert result["bigger_lattice_no_better_above_threshold"]
    # Below threshold, the d = 7 curve must sit well under d = 3.
    curves = result["toric_curves"]
    assert curves[7][0]["failure"] <= curves[3][0]["failure"]
