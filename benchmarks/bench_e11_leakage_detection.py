"""E11 — Fig. 15 leakage interrogation and replacement."""

from repro.experiments.e11_leakage_detection import run


def test_e11_leakage_detection(run_once):
    result = run_once(run, quick=True)
    assert result["detection_always_helps"]
    assert result["noisy_detector_still_helps"]
    # Gains are largest when leakage dominates other error sources.
    assert result["rows"][-1]["gain"] > 1.5
