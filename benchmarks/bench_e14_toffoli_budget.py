"""E14 — footnote j: a 1e-3 Toffoli error rate is tolerable."""

from repro.experiments.e14_toffoli_budget import run


def test_e14_toffoli_budget(run_once):
    result = run_once(run, quick=True)
    assert result["footnote_j_holds"]
    # Tolerated Toffoli rate shrinks as Clifford noise grows.
    tolerances = [r["max_toffoli_error"] for r in result["rows"]]
    assert tolerances == sorted(tolerances, reverse=True)
    # The encoded gadget's accounting backs the flow calibration.
    assert result["gadget_resources"]["ccz_locations"] == 14
