"""Benchmark configuration.

Each bench wraps one experiment runner E01–E14 (see DESIGN.md §2) in
pytest-benchmark and asserts the paper's qualitative *shape* on the
result — who wins, what the scaling exponent is, where the thresholds
fall.  Benches run the experiments in ``quick`` mode so the whole harness
finishes in minutes; EXPERIMENTS.md records a full-statistics pass.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the callable exactly once under timing (experiments are heavy
    Monte Carlo jobs; statistical repetition happens inside them)."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
